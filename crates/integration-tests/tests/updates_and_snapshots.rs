//! Update-then-query freshness and snapshot isolation across the whole
//! stack (paper §4.4): inserts, lazy deletes, slot reuse, in-place updates
//! and consolidation, all observed through OLAP queries.

use astore_core::prelude::*;
use astore_datagen::ssb;
use astore_storage::prelude::*;

fn count_asia(db: &Database) -> i64 {
    let q = Query::new()
        .root("lineorder")
        .filter("customer", Pred::eq("c_region", "ASIA"))
        .agg(Aggregate::count("n"));
    let out = execute(db, &q, &ExecOptions::default()).unwrap();
    match out.result.rows.first().map(|r| r[0].clone()) {
        Some(Value::Int(n)) => n,
        _ => 0,
    }
}

#[test]
fn inserts_become_visible_to_queries() {
    let db = ssb::generate(0.001, 42);
    let shared = SharedDatabase::new(db);
    let before = count_asia(&shared.snapshot());

    // Find an ASIA customer and append fact rows referencing it.
    let snap = shared.snapshot();
    let customer = snap.table("customer").unwrap();
    let region = customer.column("c_region").unwrap().as_dict().unwrap();
    let asia_cust = (0..customer.num_slots())
        .find(|&r| region.get(r) == "ASIA")
        .expect("an ASIA customer exists") as u32;
    let template = snap.table("lineorder").unwrap().row(0);
    drop(snap);

    for _ in 0..10 {
        let mut row = template.clone();
        row[2] = Value::Key(asia_cust); // lo_custkey
        shared.write(|db| {
            db.table_mut("lineorder").unwrap().insert(&row);
        });
    }
    let after = count_asia(&shared.snapshot());
    assert_eq!(after, before + 10);
}

#[test]
fn deletes_are_excluded_and_slots_reused() {
    let db = ssb::generate(0.001, 42);
    let shared = SharedDatabase::new(db);
    let before = count_asia(&shared.snapshot());
    let total_before = shared.snapshot().table("lineorder").unwrap().num_slots();

    // Delete 50 fact rows; count must drop by the number of deleted
    // ASIA-matching rows.
    let snap = shared.snapshot();
    let q = Query::new()
        .root("lineorder")
        .filter("customer", Pred::eq("c_region", "ASIA"))
        .agg(Aggregate::count("n"));
    let asia_before = execute(&snap, &q, &ExecOptions::default()).unwrap().plan.selected_rows;
    drop(snap);

    let mut deleted_asia = 0;
    {
        let snap = shared.snapshot();
        let lo = snap.table("lineorder").unwrap();
        let customer = snap.table("customer").unwrap();
        let region = customer.column("c_region").unwrap().as_dict().unwrap();
        let (_, keys) = lo.column("lo_custkey").unwrap().as_key().unwrap();
        for r in 0..50u32 {
            if region.get(keys[r as usize] as usize) == "ASIA" {
                deleted_asia += 1;
            }
        }
    }
    for r in 0..50u32 {
        shared.delete("lineorder", r);
    }
    let after = count_asia(&shared.snapshot());
    assert_eq!(after, before - deleted_asia);
    let _ = asia_before;

    // Re-insert 50 rows: slots are reused, arrays do not grow.
    let template = shared.snapshot().table("lineorder").unwrap().row(100);
    for _ in 0..50 {
        shared.write(|db| {
            db.table_mut("lineorder").unwrap().insert(&template);
        });
    }
    assert_eq!(
        shared.snapshot().table("lineorder").unwrap().num_slots(),
        total_before,
        "slot reuse must not grow the array family"
    );
}

#[test]
fn in_place_update_changes_query_results() {
    let db = ssb::generate(0.001, 42);
    let shared = SharedDatabase::new(db);

    let q =
        Query::new().root("lineorder").agg(Aggregate::sum(MeasureExpr::col("lo_revenue"), "total"));
    let total = |db: &Database| -> f64 {
        match execute(db, &q, &ExecOptions::default()).unwrap().result.rows[0][0] {
            Value::Float(f) => f,
            _ => panic!(),
        }
    };
    let before = total(&shared.snapshot());
    let old = shared.snapshot().table("lineorder").unwrap().row(7)[12].clone(); // lo_revenue
    let Value::Int(old_rev) = old else { panic!() };
    shared.update("lineorder", 7, "lo_revenue", &Value::Int(old_rev + 1_000_000));
    let after = total(&shared.snapshot());
    assert!((after - before - 1_000_000.0).abs() < 1e-3);
}

#[test]
fn snapshot_is_stable_under_concurrent_writes() {
    let db = ssb::generate(0.001, 42);
    let shared = SharedDatabase::new(db);
    let snap = shared.snapshot();
    let frozen = count_asia(&snap);

    let writer = shared.clone();
    let handle = std::thread::spawn(move || {
        let template = writer.snapshot().table("lineorder").unwrap().row(0);
        for i in 0..500u32 {
            writer.write(|db| {
                db.table_mut("lineorder").unwrap().insert(&template);
            });
            if i % 100 == 0 {
                writer.delete("lineorder", i);
            }
        }
    });
    for _ in 0..20 {
        assert_eq!(count_asia(&snap), frozen, "old snapshot must not move");
    }
    handle.join().unwrap();
    assert_eq!(count_asia(&snap), frozen);
}

#[test]
fn consolidation_of_dimension_rewrites_fact_references() {
    let mut db = ssb::generate(0.001, 42);
    // Delete a slice of suppliers, consolidate, and check the schema is
    // referentially sound again with fact rows pointing at NULL where the
    // supplier vanished.
    let n_supp = db.table("supplier").unwrap().num_slots();
    for r in 0..(n_supp / 4) as u32 {
        db.table_mut("supplier").unwrap().delete(r * 2);
    }
    assert!(!db.validate_references().is_empty(), "dangling refs expected before consolidation");
    db.consolidate("supplier");
    assert!(db.validate_references().is_empty());

    // Queries touching supplier silently drop the NULL-referenced rows.
    let q = Query::new().root("lineorder").group("supplier", "s_region").agg(Aggregate::count("n"));
    let out = execute(&db, &q, &ExecOptions::default()).unwrap();
    let total: i64 = out
        .result
        .rows
        .iter()
        .map(|r| match r.last().unwrap() {
            Value::Int(n) => *n,
            _ => 0,
        })
        .sum();
    let n_fact = db.table("lineorder").unwrap().num_live() as i64;
    assert!(total < n_fact, "rows with NULLed supplier references must drop out");
    assert!(total > 0);
}

#[test]
fn queries_work_mid_stream_on_every_variant() {
    let db = ssb::generate(0.001, 42);
    let shared = SharedDatabase::new(db);
    for r in 0..200u32 {
        shared.delete("lineorder", r * 3);
    }
    shared.write(|db| {
        let c = db.table_mut("customer").unwrap();
        c.delete(1);
        c.delete(2);
    });
    let snap = shared.snapshot();
    let q = Query::new()
        .root("lineorder")
        .filter("customer", Pred::eq("c_region", "ASIA"))
        .group("date", "d_year")
        .agg(Aggregate::sum(MeasureExpr::col("lo_revenue"), "rev"))
        .order(OrderKey::asc("d_year"));
    let reference = execute(&snap, &q, &ExecOptions::default()).unwrap();
    for v in ScanVariant::ALL {
        let out = execute(&snap, &q, &ExecOptions::with_variant(v)).unwrap();
        assert!(
            out.result.same_contents(&reference.result, 1e-9),
            "{} diverged on dirty data",
            v.paper_name()
        );
    }
    // Forced fan-out (the fixture is below the default planner threshold);
    // the executor assertion keeps this from decaying into serial-vs-serial.
    let mut popts = ExecOptions::default().threads(3);
    popts.optimizer.parallel_min_rows_per_thread = 1;
    popts.optimizer.host_threads = 64;
    let par = execute(&snap, &q, &popts).unwrap();
    assert!(par.plan.executor.is_parallel());
    assert!(par.result.same_contents(&reference.result, 1e-9));
}
