//! A hand-written lexer for the SPJGA SQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Semi => write!(f, ";"),
        }
    }
}

/// A lexing error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset in the input.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError { pos: i, message: "expected '=' after '!'".into() });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '-' => {
                // `--` starts a comment to end of line.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                pos: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad float literal {text:?}"),
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad integer literal {text:?}"),
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(LexError { pos: i, message: format!("unexpected character {other:?}") })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_query() {
        let toks = lex("SELECT sum(lo_revenue) FROM lineorder WHERE d_year >= 1992;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Int(1992)));
        assert_eq!(*toks.last().unwrap(), Token::Semi);
    }

    #[test]
    fn operators() {
        let toks = lex("= <> != < <= > >= + - * / ( ) , .").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn string_literals_and_escapes() {
        let toks = lex("'ASIA' 'O''NEIL'").unwrap();
        assert_eq!(toks, vec![Token::Str("ASIA".into()), Token::Str("O'NEIL".into())]);
    }

    #[test]
    fn numbers() {
        let toks = lex("42 3.25 199401").unwrap();
        assert_eq!(toks, vec![Token::Int(42), Token::Float(3.25), Token::Int(199401)]);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT -- the works\n 1").unwrap();
        assert_eq!(toks, vec![Token::Ident("SELECT".into()), Token::Int(1)]);
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("#").is_err());
    }
}
