//! A hand-written lexer for the SPJGA SQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// A parameter placeholder: `?` (positional, `None`) or `$n`
    /// (explicit 1-based position, `Some(n)`).
    Param(Option<u32>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Token::Param(None) => write!(f, "?"),
            Token::Param(Some(n)) => write!(f, "${n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Semi => write!(f, ";"),
        }
    }
}

/// A token together with its byte span in the source text — the raw
/// material for caret diagnostics in parse errors.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub tok: Token,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
}

/// A lexing error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset in the input.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    Ok(lex_spanned(input)?.into_iter().map(|s| s.tok).collect())
}

/// Tokenizes a SQL string, keeping each token's byte span.
pub fn lex_spanned(input: &str) -> Result<Vec<SpannedToken>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let push = |tok: Token, start: usize, end: usize, out: &mut Vec<SpannedToken>| {
        out.push(SpannedToken { tok, start, end });
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                i += 1;
                push(Token::LParen, start, i, &mut out);
            }
            ')' => {
                i += 1;
                push(Token::RParen, start, i, &mut out);
            }
            ',' => {
                i += 1;
                push(Token::Comma, start, i, &mut out);
            }
            '.' => {
                i += 1;
                push(Token::Dot, start, i, &mut out);
            }
            '*' => {
                i += 1;
                push(Token::Star, start, i, &mut out);
            }
            '+' => {
                i += 1;
                push(Token::Plus, start, i, &mut out);
            }
            '/' => {
                i += 1;
                push(Token::Slash, start, i, &mut out);
            }
            ';' => {
                i += 1;
                push(Token::Semi, start, i, &mut out);
            }
            '=' => {
                i += 1;
                push(Token::Eq, start, i, &mut out);
            }
            '?' => {
                i += 1;
                push(Token::Param(None), start, i, &mut out);
            }
            '$' => {
                i += 1;
                let digits = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: u32 = input[digits..i].parse().map_err(|_| LexError {
                    pos: start,
                    message: "expected a parameter number after '$' (e.g. $1)".into(),
                })?;
                if n == 0 {
                    return Err(LexError {
                        pos: start,
                        message: "parameter numbers start at $1".into(),
                    });
                }
                push(Token::Param(Some(n)), start, i, &mut out);
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    push(Token::Ne, start, i, &mut out);
                } else {
                    return Err(LexError { pos: i, message: "expected '=' after '!'".into() });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    i += 2;
                    push(Token::Le, start, i, &mut out);
                }
                Some(&b'>') => {
                    i += 2;
                    push(Token::Ne, start, i, &mut out);
                }
                _ => {
                    i += 1;
                    push(Token::Lt, start, i, &mut out);
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    push(Token::Ge, start, i, &mut out);
                } else {
                    i += 1;
                    push(Token::Gt, start, i, &mut out);
                }
            }
            '-' => {
                // `--` starts a comment to end of line.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    i += 1;
                    push(Token::Minus, start, i, &mut out);
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                pos: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                push(Token::Str(s), start, i, &mut out);
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v = text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad float literal {text:?}"),
                    })?;
                    push(Token::Float(v), start, i, &mut out);
                } else {
                    let v = text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad integer literal {text:?}"),
                    })?;
                    push(Token::Int(v), start, i, &mut out);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                push(Token::Ident(input[start..i].to_owned()), start, i, &mut out);
            }
            other => {
                return Err(LexError { pos: i, message: format!("unexpected character {other:?}") })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_query() {
        let toks = lex("SELECT sum(lo_revenue) FROM lineorder WHERE d_year >= 1992;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Int(1992)));
        assert_eq!(*toks.last().unwrap(), Token::Semi);
    }

    #[test]
    fn operators() {
        let toks = lex("= <> != < <= > >= + - * / ( ) , .").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn string_literals_and_escapes() {
        let toks = lex("'ASIA' 'O''NEIL'").unwrap();
        assert_eq!(toks, vec![Token::Str("ASIA".into()), Token::Str("O'NEIL".into())]);
    }

    #[test]
    fn numbers() {
        let toks = lex("42 3.25 199401").unwrap();
        assert_eq!(toks, vec![Token::Int(42), Token::Float(3.25), Token::Int(199401)]);
    }

    #[test]
    fn placeholders() {
        let toks = lex("WHERE a = ? AND b = $2").unwrap();
        assert!(toks.contains(&Token::Param(None)));
        assert!(toks.contains(&Token::Param(Some(2))));
        assert!(lex("$").is_err(), "bare dollar needs a number");
        assert!(lex("$0").is_err(), "parameters are 1-based");
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT -- the works\n 1").unwrap();
        assert_eq!(toks, vec![Token::Ident("SELECT".into()), Token::Int(1)]);
    }

    #[test]
    fn spans_cover_the_source() {
        let src = "SELECT 'it''s' >= 42";
        let toks = lex_spanned(src).unwrap();
        assert_eq!(&src[toks[0].start..toks[0].end], "SELECT");
        assert_eq!(&src[toks[1].start..toks[1].end], "'it''s'");
        assert_eq!(&src[toks[2].start..toks[2].end], ">=");
        assert_eq!(&src[toks[3].start..toks[3].end], "42");
    }

    #[test]
    fn string_display_reescapes_quotes() {
        assert_eq!(Token::Str("O'NEIL".into()).to_string(), "'O''NEIL'");
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("#").is_err());
    }
}
