//! # astore-sql
//!
//! A SQL front-end for the SPJGA subset A-Store executes (paper §3): a
//! hand-written lexer, recursive-descent parser and schema binder that turn
//! SQL text like the paper's Q1/Q3 examples into executable
//! [`astore_core::query::Query`] plans.
//!
//! The planner performs the paper's signature transformation: PK-FK
//! equi-join conditions in the WHERE clause are validated against the
//! schema's AIR edges and then *removed* — joins never execute, the
//! universal-table scan does.
//!
//! ```
//! use astore_storage::prelude::*;
//! use astore_sql::run_sql;
//! use astore_core::prelude::ExecOptions;
//!
//! let mut dim = Table::new("dim", Schema::new(vec![
//!     ColumnDef::new("d_name", DataType::Dict),
//! ]));
//! dim.append_row(&[Value::Str("a".into())]);
//! let mut fact = Table::new("fact", Schema::new(vec![
//!     ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
//!     ColumnDef::new("f_v", DataType::I64),
//! ]));
//! fact.append_row(&[Value::Key(0), Value::Int(5)]);
//! let mut db = Database::new();
//! db.add_table(dim);
//! db.add_table(fact);
//!
//! let out = run_sql(
//!     "SELECT d_name, sum(f_v) AS total FROM fact, dim GROUP BY d_name",
//!     &db,
//!     &ExecOptions::default(),
//! ).unwrap();
//! assert_eq!(out.result.rows.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod prepared;
pub mod statement;

use astore_core::exec::{execute, ExecOptions, ExecOutput};
use astore_storage::catalog::Database;

pub use parser::{parse, ParseError};
pub use planner::{plan, plan_with_params, sql_to_query, PlanError};
pub use prepared::{
    prepare, BoundStatement, ColumnType, ParamError, PrepareError, Prepared, PreparedKind,
};
pub use statement::{
    parse_statement, parse_template, strip_explain, strip_explain_analyze, Statement,
    StatementTemplate, WriteTemplate,
};

/// An error from any stage of SQL execution.
#[derive(Debug)]
pub enum SqlError {
    /// Parse/plan failure.
    Plan(PlanError),
    /// Schema-binding failure at execution time.
    Bind(astore_core::universal::BindError),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Plan(e) => write!(f, "{e}"),
            SqlError::Bind(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Parses, plans and executes a SQL string in one call.
pub fn run_sql(sql: &str, db: &Database, opts: &ExecOptions) -> Result<ExecOutput, SqlError> {
    let q = sql_to_query(sql, db).map_err(SqlError::Plan)?;
    execute(db, &q, opts).map_err(SqlError::Bind)
}
