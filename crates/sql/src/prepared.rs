//! Prepared statements: parse + plan once, bind parameters and execute
//! many times.
//!
//! A [`Prepared`] is a *statement template*: the SQL is parsed, identifiers
//! are case-folded, the statement is planned against the schema, and every
//! `?`/`$n` placeholder becomes a typed parameter slot. Executing it is
//! then a cheap [`Prepared::bind`] — substitute concrete values into the
//! already-planned template — instead of a full parse→plan pass.
//!
//! Two entry points:
//!
//! * [`prepare`] — the client API path: placeholders are exactly the ones
//!   the statement wrote (`?` / `$n`).
//! * [`extract_select_params`] → [`canonicalize`] → [`prepare_template`] —
//!   the serving-layer path for plain literal SQL: WHERE-clause literals
//!   are *extracted* into parameters and returned as the initial bind set,
//!   so `d_year = 1993` and `d_year = 1997` share one template (and one
//!   plan-cache entry, keyed by the canonical text). Only predicate
//!   literals move; measure arithmetic and `LIMIT` stay part of the
//!   template, because their values shape the plan.
//!
//! [`Prepared::sql`] is the canonical template text — deterministic across
//! whitespace/case/formatting variants, which is what the serving layer
//! keys its plan cache on.

use astore_core::expr::Lit;
use astore_core::query::Query;
use astore_storage::catalog::Database;
use astore_storage::types::{DataType, RowId, Value};

use crate::ast::{Arith, ColName, Cond, Scalar, SelectItem, SelectStmt};
use crate::parser::ParseError;
use crate::planner::{plan_with_params, PlanError};
use crate::statement::{
    concrete_write, parse_template, sql_value, Arg, Statement, StatementTemplate, WriteTemplate,
};

/// An error from preparing a statement (parsing or planning).
#[derive(Debug, Clone, PartialEq)]
pub enum PrepareError {
    /// The SQL did not lex/parse.
    Parse(ParseError),
    /// The statement did not bind against the schema.
    Plan(PlanError),
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareError::Parse(e) => write!(f, "{e}"),
            PrepareError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PrepareError {}

impl From<ParseError> for PrepareError {
    fn from(e: ParseError) -> Self {
        PrepareError::Parse(e)
    }
}

impl From<PlanError> for PrepareError {
    fn from(e: PlanError) -> Self {
        PrepareError::Plan(e)
    }
}

/// A parameter-binding error: wrong parameter count, or a value whose kind
/// cannot satisfy the column its slot is compared against.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    /// Description.
    pub message: String,
}

impl ParamError {
    fn new(message: impl Into<String>) -> Self {
        ParamError { message: message.into() }
    }
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parameter error: {}", self.message)
    }
}

impl std::error::Error for ParamError {}

/// The client-facing type of one result column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer (`count(*)`, integer group columns, AIR keys).
    Int,
    /// 64-bit float (`sum`/`avg`/`min`/`max` aggregates, float columns).
    Float,
    /// String (dictionary or heap string group columns).
    Str,
}

impl std::fmt::Display for ColumnType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnType::Int => write!(f, "int"),
            ColumnType::Float => write!(f, "float"),
            ColumnType::Str => write!(f, "str"),
        }
    }
}

/// The planned body of a [`Prepared`] statement.
#[derive(Debug, Clone)]
pub enum PreparedKind {
    /// A SELECT: the planned query template plus its output shape.
    Select {
        /// The planned query; parameter slots appear as `Lit::Param`.
        query: Query,
        /// Output column names (group columns, then aggregate aliases).
        columns: Vec<String>,
        /// Advertised type of each output column.
        column_types: Vec<ColumnType>,
    },
    /// An INSERT/UPDATE/DELETE template.
    Write(WriteTemplate),
}

/// A statement bound to concrete parameter values, ready to execute.
#[derive(Debug, Clone)]
pub enum BoundStatement {
    /// An executable SPJGA query (no parameter slots remain).
    Select(Query),
    /// A concrete write statement.
    Write(Statement),
}

/// A prepared statement template: planned once, bindable many times.
#[derive(Debug, Clone)]
pub struct Prepared {
    sql: String,
    param_types: Vec<Option<DataType>>,
    kind: PreparedKind,
}

/// Prepares one statement with explicit `?`/`$n` placeholders.
pub fn prepare(sql: &str, db: &Database) -> Result<Prepared, PrepareError> {
    Prepared::from_template(parse_template(sql)?, db)
}

/// The serving layer's auto-parameterization step: lifts WHERE literals of
/// a placeholder-free SELECT into parameters, returning the extracted bind
/// set (empty for writes and for statements with explicit placeholders).
/// Follow with [`canonicalize`] for the cache key and [`prepare_template`]
/// on a miss.
pub fn extract_select_params(tmpl: &mut StatementTemplate) -> Vec<Value> {
    match tmpl {
        StatementTemplate::Select(stmt) if stmt.param_count() == 0 => extract_params(stmt),
        _ => Vec::new(),
    }
}

/// Case-folds the template's identifiers in place and returns its
/// canonical text — the plan-cache key. Two statements that differ only in
/// formatting, identifier case, or (after [`extract_select_params`])
/// predicate literals, canonicalize identically.
pub fn canonicalize(tmpl: &mut StatementTemplate) -> String {
    lowercase_idents(tmpl);
    match tmpl {
        StatementTemplate::Select(s) => render_select(s),
        StatementTemplate::Write(w) => render_write(w),
    }
}

/// Plans an already-parsed template (the cache-miss path after
/// [`canonicalize`]).
pub fn prepare_template(tmpl: StatementTemplate, db: &Database) -> Result<Prepared, PrepareError> {
    Prepared::from_template(tmpl, db)
}

/// Lifts every WHERE-clause literal into a parameter slot, returning the
/// extracted values in slot order. The caller must ensure the statement has
/// no explicit placeholders yet.
fn extract_params(stmt: &mut SelectStmt) -> Vec<Value> {
    let mut out = Vec::new();
    if let Some(w) = &mut stmt.where_clause {
        w.visit_scalars_mut(&mut |s| {
            let slot = out.len();
            match s {
                Scalar::Int(v) => out.push(Value::Int(*v)),
                Scalar::Float(v) => out.push(Value::Float(*v)),
                Scalar::Str(v) => out.push(Value::Str(std::mem::take(v))),
                Scalar::Param(_) => return,
            }
            *s = Scalar::Param(slot);
        });
    }
    out
}

impl Prepared {
    fn from_template(mut tmpl: StatementTemplate, db: &Database) -> Result<Self, PrepareError> {
        lowercase_idents(&mut tmpl);
        match tmpl {
            StatementTemplate::Select(stmt) => {
                let sql = render_select(&stmt);
                let (query, param_types) = plan_with_params(&stmt, db)?;
                let columns = query.output_names();
                let column_types = output_types(&query, db);
                Ok(Prepared {
                    sql,
                    param_types,
                    kind: PreparedKind::Select { query, columns, column_types },
                })
            }
            StatementTemplate::Write(w) => {
                let param_types = write_param_types(&w, db)?;
                Ok(Prepared { sql: render_write(&w), param_types, kind: PreparedKind::Write(w) })
            }
        }
    }

    /// The canonical template text (whitespace/case-insensitive; parameter
    /// slots rendered as `$n`). The serving layer's plan-cache key.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Number of parameter values [`Prepared::bind`] expects.
    pub fn param_count(&self) -> usize {
        self.param_types.len()
    }

    /// The column type each parameter slot is checked against (`None` for a
    /// slot whose type the statement leaves open).
    pub fn param_types(&self) -> &[Option<DataType>] {
        &self.param_types
    }

    /// Is this a read-only SELECT?
    pub fn is_select(&self) -> bool {
        matches!(self.kind, PreparedKind::Select { .. })
    }

    /// The planned body.
    pub fn kind(&self) -> &PreparedKind {
        &self.kind
    }

    /// Output column names (SELECT only).
    pub fn columns(&self) -> Option<&[String]> {
        match &self.kind {
            PreparedKind::Select { columns, .. } => Some(columns),
            PreparedKind::Write(_) => None,
        }
    }

    /// Advertised output column types (SELECT only).
    pub fn column_types(&self) -> Option<&[ColumnType]> {
        match &self.kind {
            PreparedKind::Select { column_types, .. } => Some(column_types),
            PreparedKind::Write(_) => None,
        }
    }

    /// Binds concrete parameter values, producing an executable statement.
    /// Checks the parameter *count* exactly and each value's kind against
    /// the column type its slot is compared against.
    pub fn bind(&self, params: &[Value]) -> Result<BoundStatement, ParamError> {
        if params.len() != self.param_count() {
            return Err(ParamError::new(format!(
                "statement takes {} parameter(s), {} given",
                self.param_count(),
                params.len()
            )));
        }
        for (i, (v, expected)) in params.iter().zip(&self.param_types).enumerate() {
            check_param(i, v, expected.as_ref(), self.is_select())?;
        }
        match &self.kind {
            PreparedKind::Select { query, .. } => {
                let lits: Vec<Lit> = params.iter().map(value_to_lit).collect::<Result<_, _>>()?;
                let bound = query.bind_params(&lits).map_err(ParamError::new)?;
                Ok(BoundStatement::Select(bound))
            }
            PreparedKind::Write(w) => Ok(BoundStatement::Write(bind_write(w, params)?)),
        }
    }
}

/// Kind check for one parameter value against the column type its slot is
/// compared against (or stored into). `select` tightens the rules: NULL has
/// no meaning in a predicate, while writes may store it.
fn check_param(
    slot: usize,
    v: &Value,
    expected: Option<&DataType>,
    select: bool,
) -> Result<(), ParamError> {
    if let Value::Float(f) = v {
        if !f.is_finite() {
            return Err(ParamError::new(format!(
                "parameter ${} is {f}, which has no SQL literal form",
                slot + 1
            )));
        }
    }
    if select && v.is_null() {
        return Err(ParamError::new(format!(
            "parameter ${} is NULL, which never matches a predicate",
            slot + 1
        )));
    }
    let Some(expected) = expected else { return Ok(()) };
    let ok = match expected {
        DataType::I32 | DataType::I64 | DataType::F64 | DataType::Key { .. } => {
            matches!(v, Value::Int(_) | Value::Float(_) | Value::Key(_) | Value::Null)
        }
        DataType::Str | DataType::Dict => matches!(v, Value::Str(_) | Value::Null),
    };
    if ok {
        Ok(())
    } else {
        Err(ParamError::new(format!(
            "parameter ${} expects a {expected} value, got {v:?}",
            slot + 1
        )))
    }
}

fn value_to_lit(v: &Value) -> Result<Lit, ParamError> {
    Ok(match v {
        Value::Int(x) => Lit::Int(*x),
        Value::Float(f) => Lit::Float(*f),
        Value::Str(s) => Lit::Str(s.clone()),
        Value::Key(k) => Lit::Int(i64::from(*k)),
        Value::Null => return Err(ParamError::new("NULL parameter in a predicate")),
    })
}

/// Substitutes parameter values into a write template.
fn bind_write(w: &WriteTemplate, params: &[Value]) -> Result<Statement, ParamError> {
    let subst = |a: &Arg| -> Value {
        match a {
            Arg::Value(v) => v.clone(),
            Arg::Param(i) => params[*i].clone(),
        }
    };
    let rowid = |a: &Arg| -> Result<Value, ParamError> {
        match subst(a) {
            Value::Int(n) if n >= 0 && n <= i64::from(RowId::MAX) => Ok(Value::Int(n)),
            other => Err(ParamError::new(format!(
                "rowid must be an integer in [0, {}], got {other:?}",
                RowId::MAX
            ))),
        }
    };
    let bound = match w {
        WriteTemplate::Insert { table, rows } => WriteTemplate::Insert {
            table: table.clone(),
            rows: rows.iter().map(|r| r.iter().map(|a| Arg::Value(subst(a))).collect()).collect(),
        },
        WriteTemplate::Update { table, assignments, row } => WriteTemplate::Update {
            table: table.clone(),
            assignments: assignments
                .iter()
                .map(|(c, a)| (c.clone(), Arg::Value(subst(a))))
                .collect(),
            row: Arg::Value(rowid(row)?),
        },
        WriteTemplate::Delete { table, row } => {
            WriteTemplate::Delete { table: table.clone(), row: Arg::Value(rowid(row)?) }
        }
    };
    Ok(concrete_write(bound))
}

/// Schema-derived expected types for every parameter slot of a write
/// template; also validates the template's shape (table, columns, arity)
/// so prepare fails early instead of at first execute.
fn write_param_types(
    w: &WriteTemplate,
    db: &Database,
) -> Result<Vec<Option<DataType>>, PrepareError> {
    let plan_err = |m: String| PrepareError::Plan(PlanError { message: m });
    let table =
        db.table(w.table()).ok_or_else(|| plan_err(format!("unknown table {:?}", w.table())))?;
    let defs = table.schema().defs();
    let mut types: Vec<Option<DataType>> = Vec::new();
    // Shared with the SELECT planner: enforces the u16::MAX slot cap (so a
    // hand-built template cannot request a giant parameter table) and the
    // string/numeric family-conflict rule.
    let mut record = |slot: usize, dtype: DataType| -> Result<(), PrepareError> {
        crate::planner::record_param_type(&mut types, slot, dtype).map_err(plan_err)
    };
    match w {
        WriteTemplate::Insert { rows, .. } => {
            for row in rows {
                if row.len() != defs.len() {
                    return Err(plan_err(format!(
                        "arity mismatch: got {}, table has {}",
                        row.len(),
                        defs.len()
                    )));
                }
                for (def, arg) in defs.iter().zip(row) {
                    if let Arg::Param(i) = arg {
                        record(*i, def.dtype.clone())?;
                    }
                }
            }
        }
        WriteTemplate::Update { assignments, row, .. } => {
            for (col, arg) in assignments {
                let def = defs
                    .iter()
                    .find(|d| d.name == *col)
                    .ok_or_else(|| plan_err(format!("no column {col:?} in {:?}", w.table())))?;
                if let Arg::Param(i) = arg {
                    record(*i, def.dtype.clone())?;
                }
            }
            if let Arg::Param(i) = row {
                record(*i, DataType::I64)?;
            }
        }
        WriteTemplate::Delete { row, .. } => {
            if let Arg::Param(i) = row {
                record(*i, DataType::I64)?;
            }
        }
    }
    if types.len() < w.param_count() {
        types.resize(w.param_count(), None);
    }
    Ok(types)
}

/// The advertised type of each output column of a planned query.
fn output_types(query: &Query, db: &Database) -> Vec<ColumnType> {
    use astore_core::query::AggFunc;
    let group = query.group_by.iter().map(|c| {
        let dtype = db.table(&c.table).and_then(|t| {
            t.schema().defs().iter().find(|d| d.name == c.column).map(|d| d.dtype.clone())
        });
        match dtype {
            Some(DataType::Str | DataType::Dict) => ColumnType::Str,
            Some(DataType::F64) => ColumnType::Float,
            _ => ColumnType::Int,
        }
    });
    let aggs = query.aggregates.iter().map(|a| match a.func {
        AggFunc::Count => ColumnType::Int,
        _ => ColumnType::Float,
    });
    group.chain(aggs).collect()
}

// ---------------------------------------------------------------------------
// Canonical rendering (the cache-key text).
// ---------------------------------------------------------------------------

/// Case-folds every identifier in the template (tables, columns, aliases)
/// so two spellings of a name canonicalize identically. String literals
/// are untouched.
fn lowercase_idents(tmpl: &mut StatementTemplate) {
    fn col(c: &mut ColName) {
        if let Some(t) = &mut c.table {
            t.make_ascii_lowercase();
        }
        c.column.make_ascii_lowercase();
    }
    fn arith(a: &mut Arith) {
        match a {
            Arith::Col(c) => col(c),
            Arith::Add(x, y) | Arith::Sub(x, y) | Arith::Mul(x, y) => {
                arith(x);
                arith(y);
            }
            Arith::Num(_) => {}
        }
    }
    fn cond(c: &mut Cond) {
        match c {
            Cond::Cmp { col: cl, .. }
            | Cond::Between { col: cl, .. }
            | Cond::InList { col: cl, .. } => col(cl),
            Cond::JoinEq(a, b) => {
                col(a);
                col(b);
            }
            Cond::And(cs) | Cond::Or(cs) => cs.iter_mut().for_each(cond),
            Cond::Not(c) => cond(c),
        }
    }
    match tmpl {
        StatementTemplate::Select(s) => {
            // Aliases keep their case: they name *output* columns, which
            // the client reads back (two alias spellings are genuinely
            // different result shapes, so they may cache separately).
            // ORDER BY keys resolve case-insensitively at plan time.
            for item in &mut s.items {
                match item {
                    SelectItem::Col { col: c, .. } => col(c),
                    SelectItem::Agg { arg, .. } => {
                        if let Some(a) = arg {
                            arith(a);
                        }
                    }
                }
            }
            s.tables.iter_mut().for_each(|t| t.make_ascii_lowercase());
            if let Some(w) = &mut s.where_clause {
                cond(w);
            }
            s.group_by.iter_mut().for_each(col);
        }
        StatementTemplate::Write(w) => match w {
            WriteTemplate::Insert { table, .. } => table.make_ascii_lowercase(),
            WriteTemplate::Update { table, assignments, .. } => {
                table.make_ascii_lowercase();
                assignments.iter_mut().for_each(|(c, _)| c.make_ascii_lowercase());
            }
            WriteTemplate::Delete { table, .. } => table.make_ascii_lowercase(),
        },
    }
}

fn op_str(op: astore_core::expr::CmpOp) -> &'static str {
    use astore_core::expr::CmpOp::*;
    match op {
        Eq => "=",
        Ne => "<>",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
    }
}

fn render_arith(a: &Arith) -> String {
    match a {
        Arith::Col(c) => c.to_string(),
        Arith::Num(v) if v.fract() == 0.0 && v.is_finite() && v.abs() < 9e15 => {
            format!("{}", *v as i64)
        }
        Arith::Num(v) => v.to_string(),
        Arith::Add(x, y) => format!("({} + {})", render_arith(x), render_arith(y)),
        Arith::Sub(x, y) => format!("({} - {})", render_arith(x), render_arith(y)),
        Arith::Mul(x, y) => format!("({} * {})", render_arith(x), render_arith(y)),
    }
}

fn render_cond(c: &Cond) -> String {
    // Composite children are always parenthesized, so the rendering is
    // unambiguous (injective up to AST equality) regardless of precedence.
    let paren = |c: &Cond| -> String {
        match c {
            Cond::And(_) | Cond::Or(_) => format!("({})", render_cond(c)),
            other => render_cond(other),
        }
    };
    match c {
        Cond::Cmp { col, op, rhs } => format!("{col} {} {rhs}", op_str(*op)),
        Cond::JoinEq(a, b) => format!("{a} = {b}"),
        Cond::Between { col, lo, hi } => format!("{col} between {lo} and {hi}"),
        Cond::InList { col, list } => {
            let items: Vec<String> = list.iter().map(|s| s.to_string()).collect();
            format!("{col} in ({})", items.join(", "))
        }
        Cond::And(cs) => cs.iter().map(paren).collect::<Vec<_>>().join(" and "),
        Cond::Or(cs) => cs.iter().map(paren).collect::<Vec<_>>().join(" or "),
        Cond::Not(c) => format!("not ({})", render_cond(c)),
    }
}

/// Renders a (case-folded) SELECT template as canonical SQL text.
fn render_select(s: &SelectStmt) -> String {
    let mut out = String::from("select ");
    let items: Vec<String> = s
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Col { col, alias } => match alias {
                Some(a) => format!("{col} as {a}"),
                None => col.to_string(),
            },
            SelectItem::Agg { func, arg, alias } => {
                let body = match arg {
                    None => "*".to_owned(),
                    Some(a) => render_arith(a),
                };
                match alias {
                    Some(a) => format!("{func}({body}) as {a}"),
                    None => format!("{func}({body})"),
                }
            }
        })
        .collect();
    out.push_str(&items.join(", "));
    out.push_str(" from ");
    out.push_str(&s.tables.join(", "));
    if let Some(w) = &s.where_clause {
        out.push_str(" where ");
        out.push_str(&render_cond(w));
    }
    if !s.group_by.is_empty() {
        out.push_str(" group by ");
        let cols: Vec<String> = s.group_by.iter().map(|c| c.to_string()).collect();
        out.push_str(&cols.join(", "));
    }
    if !s.order_by.is_empty() {
        out.push_str(" order by ");
        let keys: Vec<String> = s
            .order_by
            .iter()
            .map(|o| format!("{} {}", o.name, if o.desc { "desc" } else { "asc" }))
            .collect();
        out.push_str(&keys.join(", "));
    }
    if let Some(n) = s.limit {
        out.push_str(&format!(" limit {n}"));
    }
    out
}

fn render_arg(a: &Arg) -> String {
    match a {
        Arg::Value(v) => sql_value(v),
        Arg::Param(i) => format!("${}", i + 1),
    }
}

/// Renders a (case-folded) write template as canonical SQL text.
fn render_write(w: &WriteTemplate) -> String {
    match w {
        WriteTemplate::Insert { table, rows } => {
            let rows: Vec<String> = rows
                .iter()
                .map(|r| {
                    let vals: Vec<String> = r.iter().map(render_arg).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            format!("insert into {table} values {}", rows.join(", "))
        }
        WriteTemplate::Update { table, assignments, row } => {
            let sets: Vec<String> =
                assignments.iter().map(|(c, a)| format!("{c} = {}", render_arg(a))).collect();
            format!("update {table} set {} where rowid = {}", sets.join(", "), render_arg(row))
        }
        WriteTemplate::Delete { table, row } => {
            format!("delete from {table} where rowid = {}", render_arg(row))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_core::exec::{execute, ExecOptions};
    use astore_storage::table::{ColumnDef, Schema, Table};

    fn star_db() -> Database {
        let mut dim = Table::new(
            "dim",
            Schema::new(vec![
                ColumnDef::new("d_name", DataType::Dict),
                ColumnDef::new("d_rank", DataType::I32),
            ]),
        );
        for (n, r) in [("alpha", 1), ("beta", 2), ("gamma", 3)] {
            dim.append_row(&[Value::Str(n.into()), Value::Int(r)]);
        }
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_v", DataType::I64),
            ]),
        );
        for (k, v) in [(0u32, 10), (1, 20), (2, 30), (0, 40)] {
            fact.append_row(&[Value::Key(k), Value::Int(v)]);
        }
        let mut db = Database::new();
        db.add_table(dim);
        db.add_table(fact);
        db
    }

    #[test]
    fn prepare_bind_execute_roundtrip() {
        let db = star_db();
        let p = prepare(
            "SELECT d_name, sum(f_v) AS s FROM fact, dim WHERE d_rank >= ? GROUP BY d_name \
             ORDER BY d_name",
            &db,
        )
        .unwrap();
        assert_eq!(p.param_count(), 1);
        assert!(p.is_select());
        assert_eq!(p.columns().unwrap(), ["d_name", "s"]);
        assert_eq!(p.column_types().unwrap(), [ColumnType::Str, ColumnType::Float]);

        let BoundStatement::Select(q) = p.bind(&[Value::Int(2)]).unwrap() else { panic!() };
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(out.result.rows.len(), 2, "beta and gamma");

        // Re-bind with a different value: no re-plan, different rows.
        let BoundStatement::Select(q) = p.bind(&[Value::Int(3)]).unwrap() else { panic!() };
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(out.result.rows.len(), 1, "gamma only");
    }

    #[test]
    fn bind_checks_count_and_type() {
        let db = star_db();
        let p = prepare("SELECT count(*) FROM fact, dim WHERE d_name = $1 AND d_rank < $2", &db)
            .unwrap();
        assert_eq!(p.param_count(), 2);
        let e = p.bind(&[Value::Str("alpha".into())]).unwrap_err();
        assert!(e.message.contains("2 parameter(s), 1 given"), "{e}");
        let e = p.bind(&[Value::Int(1), Value::Int(2)]).unwrap_err();
        assert!(e.message.contains("$1 expects"), "{e}");
        let e = p.bind(&[Value::Str("alpha".into()), Value::Str("x".into())]).unwrap_err();
        assert!(e.message.contains("$2 expects"), "{e}");
        let e = p.bind(&[Value::Null, Value::Int(2)]).unwrap_err();
        assert!(e.message.contains("NULL"), "{e}");
        assert!(p.bind(&[Value::Str("alpha".into()), Value::Int(2)]).is_ok());
    }

    #[test]
    fn conflicting_param_families_rejected_at_prepare() {
        let db = star_db();
        let e = prepare("SELECT count(*) FROM fact, dim WHERE d_name = $1 AND d_rank = $1", &db)
            .unwrap_err();
        assert!(e.to_string().contains("both string and numeric"), "{e}");
    }

    #[test]
    fn canonical_text_is_format_insensitive() {
        let db = star_db();
        let a = prepare("SELECT count(*) FROM fact WHERE f_v >= ?", &db).unwrap();
        let b = prepare("select   COUNT( * )\nfrom FACT where F_V>=$1 ;", &db).unwrap();
        assert_eq!(a.sql(), b.sql());
    }

    /// The serving layer's staged pipeline, as one helper: extract →
    /// canonicalize → plan.
    fn prepare_extracting(sql: &str, db: &Database) -> (Prepared, Vec<Value>) {
        let mut tmpl = parse_template(sql).unwrap();
        let params = extract_select_params(&mut tmpl);
        let _key = canonicalize(&mut tmpl);
        (prepare_template(tmpl, db).unwrap(), params)
    }

    #[test]
    fn extraction_unifies_literal_variants() {
        let db = star_db();
        let (a, pa) = prepare_extracting("SELECT count(*) FROM fact WHERE f_v >= 10", &db);
        let (b, pb) = prepare_extracting("SELECT count(*) FROM fact WHERE f_v >= 25", &db);
        assert_eq!(a.sql(), b.sql(), "literal variants share one template");
        assert_eq!(pa, vec![Value::Int(10)]);
        assert_eq!(pb, vec![Value::Int(25)]);

        // The extracted template executes identically to the literal SQL.
        let BoundStatement::Select(q) = a.bind(&pa).unwrap() else { panic!() };
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(out.result.rows[0][0], Value::Int(4));
        let BoundStatement::Select(q) = b.bind(&pb).unwrap() else { panic!() };
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(out.result.rows[0][0], Value::Int(2), "40 and 30 pass");
    }

    #[test]
    fn extraction_leaves_measures_and_limit_alone() {
        let db = star_db();
        let (p, params) =
            prepare_extracting("SELECT sum(f_v * 2) AS s2 FROM fact WHERE f_v > 10 LIMIT 5", &db);
        assert_eq!(params, vec![Value::Int(10)], "only the WHERE literal moves");
        assert!(p.sql().contains("* 2"), "measure constant stays: {}", p.sql());
        assert!(p.sql().ends_with("limit 5"), "{}", p.sql());
    }

    #[test]
    fn explicit_placeholders_disable_extraction() {
        let db = star_db();
        let (p, params) =
            prepare_extracting("SELECT count(*) FROM fact WHERE f_v > ? AND f_v < 100", &db);
        assert!(params.is_empty(), "mixed statements keep their literals");
        assert_eq!(p.param_count(), 1);
    }

    #[test]
    fn prepared_writes_bind_and_validate() {
        let db = star_db();
        let p = prepare("INSERT INTO fact VALUES (?, ?)", &db).unwrap();
        assert!(!p.is_select());
        assert_eq!(p.param_count(), 2);
        let BoundStatement::Write(s) = p.bind(&[Value::Int(1), Value::Int(99)]).unwrap() else {
            panic!()
        };
        assert_eq!(
            s,
            Statement::Insert {
                table: "fact".into(),
                rows: vec![vec![Value::Int(1), Value::Int(99)]]
            }
        );
        // Type mismatch caught at bind.
        let e = p.bind(&[Value::Str("x".into()), Value::Int(1)]).unwrap_err();
        assert!(e.message.contains("$1 expects"), "{e}");

        let p = prepare("UPDATE fact SET f_v = $2 WHERE rowid = $1", &db).unwrap();
        let BoundStatement::Write(s) = p.bind(&[Value::Int(3), Value::Int(-5)]).unwrap() else {
            panic!()
        };
        assert_eq!(
            s,
            Statement::Update {
                table: "fact".into(),
                assignments: vec![("f_v".into(), Value::Int(-5))],
                row: 3,
            }
        );
        let e = p.bind(&[Value::Int(-1), Value::Int(0)]).unwrap_err();
        assert!(e.message.contains("rowid"), "{e}");

        let p = prepare("DELETE FROM fact WHERE rowid = ?", &db).unwrap();
        let BoundStatement::Write(s) = p.bind(&[Value::Int(2)]).unwrap() else { panic!() };
        assert_eq!(s, Statement::Delete { table: "fact".into(), row: 2 });
    }

    #[test]
    fn write_templates_validate_shape_at_prepare() {
        let db = star_db();
        assert!(prepare("INSERT INTO nope VALUES (1)", &db).is_err());
        assert!(prepare("INSERT INTO fact VALUES (?)", &db).is_err(), "arity");
        assert!(prepare("UPDATE fact SET nope = ? WHERE rowid = 0", &db).is_err());
    }

    #[test]
    fn rendering_is_injective_for_nesting() {
        let db = star_db();
        let a = prepare("SELECT count(*) FROM fact WHERE f_v = 1 OR (f_v = 2 AND f_v = 3)", &db)
            .unwrap();
        let b = prepare("SELECT count(*) FROM fact WHERE (f_v = 1 OR f_v = 2) AND f_v = 3", &db)
            .unwrap();
        assert_ne!(a.sql(), b.sql());
    }
}
