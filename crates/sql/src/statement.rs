//! Top-level statement parsing: SELECT plus the write statements the
//! serving layer routes through `SharedDatabase::write`.
//!
//! A-Store's storage model makes the array index the primary key, so the
//! write grammar addresses rows by `rowid` directly (paper §2: "the array
//! index is the primary key"):
//!
//! ```text
//! INSERT INTO t VALUES (lit, …) [, (lit, …)]* [;]
//! UPDATE t SET col = lit [, col = lit]* WHERE rowid = n [;]
//! DELETE FROM t WHERE rowid = n [;]
//! ```
//!
//! Literals are integers, floats, single-quoted strings, or `NULL`. Key
//! (AIR) columns take integer literals; the executor coerces them using
//! the table schema. Every literal position (including `rowid`) also
//! accepts a `?`/`$n` placeholder — [`parse_template`] keeps the slots,
//! [`parse_statement`] requires a fully literal statement.

use astore_storage::types::{RowId, Value};

use crate::ast::SelectStmt;
use crate::lexer::{lex, Token};
use crate::parser::{parse, ParseError};

/// One parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A read-only SPJGA query.
    Select(SelectStmt),
    /// `INSERT INTO table VALUES (…), (…)` — one or more rows.
    Insert {
        /// Target table.
        table: String,
        /// Row literals, one `Vec<Value>` per row.
        rows: Vec<Vec<Value>>,
    },
    /// `UPDATE table SET col = lit, … WHERE rowid = n`.
    Update {
        /// Target table.
        table: String,
        /// `(column, new value)` pairs.
        assignments: Vec<(String, Value)>,
        /// The row to update (the array index is the primary key).
        row: RowId,
    },
    /// `DELETE FROM table WHERE rowid = n`.
    Delete {
        /// Target table.
        table: String,
        /// The row to delete.
        row: RowId,
    },
}

impl Statement {
    /// Returns `true` for statements that mutate the database.
    pub fn is_write(&self) -> bool {
        !matches!(self, Statement::Select(_))
    }

    /// Renders a *write* statement back to canonical SQL text — the form
    /// the write-ahead log stores, so a parameter-bound prepared write is
    /// logged (and replayed) exactly like its literal-SQL equivalent.
    /// Returns `None` for SELECT.
    pub fn to_sql(&self) -> Option<String> {
        match self {
            Statement::Select(_) => None,
            Statement::Insert { table, rows } => {
                let rows: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        let vals: Vec<String> = r.iter().map(sql_value).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                Some(format!("INSERT INTO {table} VALUES {}", rows.join(", ")))
            }
            Statement::Update { table, assignments, row } => {
                let sets: Vec<String> =
                    assignments.iter().map(|(c, v)| format!("{c} = {}", sql_value(v))).collect();
                Some(format!("UPDATE {table} SET {} WHERE rowid = {row}", sets.join(", ")))
            }
            Statement::Delete { table, row } => {
                Some(format!("DELETE FROM {table} WHERE rowid = {row}"))
            }
        }
    }
}

/// Renders one literal as SQL source text that re-parses to the same
/// [`Value`].
pub(crate) fn sql_value(v: &Value) -> String {
    match v {
        Value::Int(x) => x.to_string(),
        // A whole float must keep its decimal point or it re-parses as Int.
        Value::Float(f) if f.fract() == 0.0 && f.is_finite() => format!("{f:.1}"),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Key(k) => k.to_string(),
        Value::Null => "NULL".into(),
    }
}

/// One slot of a write template: a concrete literal or a parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A literal value.
    Value(Value),
    /// A `?`/`$n` placeholder (0-based slot).
    Param(usize),
}

impl Arg {
    /// The parameter slot, if this argument is one.
    pub fn param(&self) -> Option<usize> {
        match self {
            Arg::Param(i) => Some(*i),
            Arg::Value(_) => None,
        }
    }
}

/// A write statement whose literal positions may be parameter slots.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteTemplate {
    /// `INSERT INTO table VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Row slots, one `Vec<Arg>` per row.
        rows: Vec<Vec<Arg>>,
    },
    /// `UPDATE table SET col = arg, … WHERE rowid = arg`.
    Update {
        /// Target table.
        table: String,
        /// `(column, slot)` pairs.
        assignments: Vec<(String, Arg)>,
        /// The row to update.
        row: Arg,
    },
    /// `DELETE FROM table WHERE rowid = arg`.
    Delete {
        /// Target table.
        table: String,
        /// The row to delete.
        row: Arg,
    },
}

impl WriteTemplate {
    /// The target table.
    pub fn table(&self) -> &str {
        match self {
            WriteTemplate::Insert { table, .. }
            | WriteTemplate::Update { table, .. }
            | WriteTemplate::Delete { table, .. } => table,
        }
    }

    /// Every argument slot, in source order.
    pub fn args(&self) -> Vec<&Arg> {
        match self {
            WriteTemplate::Insert { rows, .. } => rows.iter().flatten().collect(),
            WriteTemplate::Update { assignments, row, .. } => {
                assignments.iter().map(|(_, a)| a).chain(std::iter::once(row)).collect()
            }
            WriteTemplate::Delete { row, .. } => vec![row],
        }
    }

    /// Number of parameter slots (one more than the highest index).
    pub fn param_count(&self) -> usize {
        self.args().iter().filter_map(|a| a.param()).map(|i| i + 1).max().unwrap_or(0)
    }
}

/// A statement whose literal positions may be parameter slots — what
/// `prepare` produces before planning/binding.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementTemplate {
    /// A SELECT (placeholders live in its WHERE clause).
    Select(SelectStmt),
    /// An INSERT/UPDATE/DELETE.
    Write(WriteTemplate),
}

impl StatementTemplate {
    /// Number of parameter slots the template references.
    pub fn param_count(&self) -> usize {
        match self {
            StatementTemplate::Select(s) => s.param_count(),
            StatementTemplate::Write(w) => w.param_count(),
        }
    }

    /// Is this a read-only SELECT?
    pub fn is_select(&self) -> bool {
        matches!(self, StatementTemplate::Select(_))
    }

    /// Does a SELECT's WHERE clause embed literal values (as opposed to
    /// placeholders)? The serving layer declines to plan-cache such
    /// prepares: every distinct literal would occupy its own cache entry,
    /// letting a literal-per-request client flood the shared cache.
    pub fn has_predicate_literals(&self) -> bool {
        match self {
            StatementTemplate::Select(s) => {
                let mut found = false;
                if let Some(w) = &s.where_clause {
                    w.visit_scalars(&mut |sc| {
                        if !matches!(sc, crate::ast::Scalar::Param(_)) {
                            found = true;
                        }
                    });
                }
                found
            }
            StatementTemplate::Write(_) => false,
        }
    }

    /// Converts a placeholder-free template into a concrete [`Statement`];
    /// a template that still carries parameter slots is an error.
    pub fn into_concrete(self) -> Result<Statement, ParseError> {
        if self.param_count() > 0 {
            return Err(ParseError::new(format!(
                "statement has {} parameter placeholder(s); prepare and bind it instead",
                self.param_count()
            )));
        }
        Ok(match self {
            StatementTemplate::Select(s) => Statement::Select(s),
            StatementTemplate::Write(w) => concrete_write(w),
        })
    }
}

/// Parses one statement of any kind, keeping parameter placeholders.
pub fn parse_template(input: &str) -> Result<StatementTemplate, ParseError> {
    let head = first_keyword(input).unwrap_or_default();
    match head.as_str() {
        "insert" | "update" | "delete" => {
            let toks = lex(input)?;
            let mut c = Cursor { toks, pos: 0, anon_params: 0, numbered_params: false };
            let stmt = match head.as_str() {
                "insert" => c.insert_stmt()?,
                "update" => c.update_stmt()?,
                _ => c.delete_stmt()?,
            };
            c.eat(&Token::Semi);
            if !c.at_end() {
                return Err(c.err(format!("trailing input at token {}", c.peek_str())));
            }
            Ok(StatementTemplate::Write(stmt))
        }
        _ => Ok(StatementTemplate::Select(parse(input)?)),
    }
}

/// Parses one fully literal statement of any kind; placeholders are an
/// error here (the WAL replays concrete statements only).
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    parse_template(input)?.into_concrete()
}

/// Converts a placeholder-free write template into a concrete statement.
/// Panics if a parameter slot remains (callers check `param_count`).
pub(crate) fn concrete_write(w: WriteTemplate) -> Statement {
    let value = |a: Arg| match a {
        Arg::Value(v) => v,
        Arg::Param(i) => panic!("unbound parameter ${} in write statement", i + 1),
    };
    let rowid = |a: Arg| match value(a) {
        Value::Int(n) if n >= 0 && n <= i64::from(u32::MAX) => n as RowId,
        other => panic!("rowid slot holds non-rowid value {other:?}"),
    };
    match w {
        WriteTemplate::Insert { table, rows } => Statement::Insert {
            table,
            rows: rows.into_iter().map(|r| r.into_iter().map(value).collect()).collect(),
        },
        WriteTemplate::Update { table, assignments, row } => Statement::Update {
            table,
            assignments: assignments.into_iter().map(|(c, a)| (c, value(a))).collect(),
            row: rowid(row),
        },
        WriteTemplate::Delete { table, row } => Statement::Delete { table, row: rowid(row) },
    }
}

/// Strips a leading `EXPLAIN ANALYZE` prefix (case-insensitive, any
/// whitespace between and after the keywords), returning the inner
/// statement text. `None` when the input has no such prefix — callers fall
/// through to normal statement parsing. A bare `EXPLAIN` without `ANALYZE`
/// is not a prefix (the engine only reports *executed* plans).
pub fn strip_explain_analyze(input: &str) -> Option<&str> {
    let rest = strip_keyword(input.trim_start(), "explain")?;
    let rest = strip_keyword(rest.trim_start(), "analyze")?;
    let inner = rest.trim_start();
    (!inner.is_empty()).then_some(inner)
}

/// Strips a leading bare `EXPLAIN` prefix (case-insensitive), returning the
/// inner statement text. `None` when the input has no such prefix **or**
/// when the prefix is `EXPLAIN ANALYZE` — that form belongs to
/// [`strip_explain_analyze`], so callers must try that first (or this one
/// declines anyway). Bare `EXPLAIN` reports the *decision* — plan shape and
/// the engine router's choice — without executing the statement.
pub fn strip_explain(input: &str) -> Option<&str> {
    let rest = strip_keyword(input.trim_start(), "explain")?;
    let inner = rest.trim_start();
    let first = inner.split_whitespace().next().unwrap_or("");
    if first.eq_ignore_ascii_case("analyze") {
        return None;
    }
    (!inner.is_empty()).then_some(inner)
}

/// Strips one leading keyword iff it is followed by whitespace.
fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let head = s.get(..kw.len())?;
    if head.eq_ignore_ascii_case(kw)
        && s.as_bytes().get(kw.len()).is_some_and(u8::is_ascii_whitespace)
    {
        Some(&s[kw.len()..])
    } else {
        None
    }
}

/// The first word of the statement, lower-cased.
fn first_keyword(input: &str) -> Option<String> {
    input
        .split_whitespace()
        .next()
        .map(|w| w.trim_end_matches(|c: char| !c.is_ascii_alphanumeric()).to_ascii_lowercase())
}

struct Cursor {
    toks: Vec<Token>,
    pos: usize,
    anon_params: usize,
    numbered_params: bool,
}

impl Cursor {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_str(&self) -> String {
        self.peek().map(|t| t.to_string()).unwrap_or_else(|| "<eof>".into())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: String) -> ParseError {
        ParseError::new(message)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {}", self.peek_str())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected keyword {kw}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn param_slot(&mut self, p: Option<u32>) -> Result<usize, ParseError> {
        crate::parser::resolve_param_slot(p, &mut self.anon_params, &mut self.numbered_params)
            .map_err(ParseError::new)
    }

    /// A literal (number, string, `NULL`) or a placeholder.
    fn arg(&mut self) -> Result<Arg, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Arg::Value(Value::Int(v))),
            Some(Token::Float(v)) => Ok(Arg::Value(Value::Float(v))),
            Some(Token::Str(s)) => Ok(Arg::Value(Value::Str(s))),
            Some(Token::Param(p)) => Ok(Arg::Param(self.param_slot(p)?)),
            Some(Token::Minus) => match self.next() {
                Some(Token::Int(v)) => Ok(Arg::Value(Value::Int(-v))),
                Some(Token::Float(v)) => Ok(Arg::Value(Value::Float(-v))),
                other => Err(self.err(format!("expected number after '-', found {other:?}"))),
            },
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Arg::Value(Value::Null)),
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }

    /// `WHERE rowid = n` (or a placeholder for `n`).
    fn where_rowid(&mut self) -> Result<Arg, ParseError> {
        self.expect_kw("where")?;
        let col = self.ident()?;
        if !col.eq_ignore_ascii_case("rowid") {
            return Err(self.err(format!(
                "write statements address rows by primary key: expected `rowid`, found `{col}` \
                 (in A-Store the array index is the primary key)"
            )));
        }
        self.expect(&Token::Eq)?;
        match self.next() {
            Some(Token::Int(n)) if n >= 0 && n <= i64::from(u32::MAX) => {
                Ok(Arg::Value(Value::Int(n)))
            }
            Some(Token::Param(p)) => Ok(Arg::Param(self.param_slot(p)?)),
            other => Err(self.err(format!("expected row id, found {other:?}"))),
        }
    }

    fn insert_stmt(&mut self) -> Result<WriteTemplate, ParseError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.arg()?];
            while self.eat(&Token::Comma) {
                row.push(self.arg()?);
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(WriteTemplate::Insert { table, rows })
    }

    fn update_stmt(&mut self) -> Result<WriteTemplate, ParseError> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            assignments.push((col, self.arg()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let row = self.where_rowid()?;
        Ok(WriteTemplate::Update { table, assignments, row })
    }

    fn delete_stmt(&mut self) -> Result<WriteTemplate, ParseError> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let row = self.where_rowid()?;
        Ok(WriteTemplate::Delete { table, row })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_routes_to_select_parser() {
        let s = parse_statement("SELECT count(*) FROM t").unwrap();
        assert!(matches!(s, Statement::Select(_)));
        assert!(!s.is_write());
    }

    #[test]
    fn insert_single_and_multi_row() {
        let s = parse_statement("INSERT INTO dim VALUES (1, 2.5, 'x', NULL)").unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                table: "dim".into(),
                rows: vec![vec![
                    Value::Int(1),
                    Value::Float(2.5),
                    Value::Str("x".into()),
                    Value::Null
                ]],
            }
        );
        let s = parse_statement("insert into t values (1), (-2), (3);").unwrap();
        let Statement::Insert { rows, .. } = s else { panic!() };
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], vec![Value::Int(-2)]);
    }

    #[test]
    fn update_by_rowid() {
        let s = parse_statement("UPDATE t SET a = 5, b = 'y' WHERE rowid = 7").unwrap();
        assert_eq!(
            s,
            Statement::Update {
                table: "t".into(),
                assignments: vec![
                    ("a".into(), Value::Int(5)),
                    ("b".into(), Value::Str("y".into()))
                ],
                row: 7,
            }
        );
    }

    #[test]
    fn delete_by_rowid() {
        let s = parse_statement("DELETE FROM t WHERE rowid = 3;").unwrap();
        assert_eq!(s, Statement::Delete { table: "t".into(), row: 3 });
        assert!(s.is_write());
    }

    #[test]
    fn write_templates_keep_placeholders() {
        let t = parse_template("INSERT INTO t VALUES (?, 'fixed', ?)").unwrap();
        assert_eq!(t.param_count(), 2);
        let StatementTemplate::Write(WriteTemplate::Insert { rows, .. }) = &t else { panic!() };
        assert_eq!(rows[0][0], Arg::Param(0));
        assert_eq!(rows[0][1], Arg::Value(Value::Str("fixed".into())));
        assert_eq!(rows[0][2], Arg::Param(1));

        let t = parse_template("UPDATE t SET v = $2 WHERE rowid = $1").unwrap();
        assert_eq!(t.param_count(), 2);
        let StatementTemplate::Write(WriteTemplate::Update { row, .. }) = &t else { panic!() };
        assert_eq!(*row, Arg::Param(0));

        let t = parse_template("DELETE FROM t WHERE rowid = ?").unwrap();
        assert_eq!(t.param_count(), 1);

        // parse_statement refuses templates.
        let e = parse_statement("DELETE FROM t WHERE rowid = ?").unwrap_err();
        assert!(e.message.contains("placeholder"), "{e}");
    }

    #[test]
    fn write_errors() {
        assert!(parse_statement("INSERT INTO t").is_err());
        assert!(parse_statement("INSERT INTO t VALUES 1, 2").is_err());
        assert!(parse_statement("DELETE FROM t WHERE other = 3").is_err());
        assert!(parse_statement("UPDATE t SET a = 1").is_err());
        assert!(parse_statement("DELETE FROM t WHERE rowid = -1").is_err());
        assert!(parse_statement("INSERT INTO t VALUES (1) garbage").is_err());
    }

    #[test]
    fn to_sql_roundtrips_through_the_parser() {
        for sql in [
            "INSERT INTO t VALUES (1, 2.5, 'x', NULL)",
            "INSERT INTO t VALUES (1), (-2), (3)",
            "UPDATE t SET a = 5, b = 'O''NEIL', c = 2.0 WHERE rowid = 7",
            "DELETE FROM t WHERE rowid = 3",
        ] {
            let stmt = parse_statement(sql).unwrap();
            let rendered = stmt.to_sql().unwrap();
            assert_eq!(parse_statement(&rendered).unwrap(), stmt, "{sql} → {rendered}");
        }
        assert!(parse_statement("SELECT count(*) FROM t").unwrap().to_sql().is_none());
    }

    #[test]
    fn explain_analyze_prefix_strips() {
        assert_eq!(
            strip_explain_analyze("EXPLAIN ANALYZE SELECT count(*) FROM t"),
            Some("SELECT count(*) FROM t")
        );
        assert_eq!(
            strip_explain_analyze("  explain\n\tAnalyze  select 1 from t"),
            Some("select 1 from t")
        );
        // Not a prefix: bare EXPLAIN, missing body, unrelated statements,
        // or the keywords fused to the next token.
        assert_eq!(strip_explain_analyze("EXPLAIN SELECT count(*) FROM t"), None);
        assert_eq!(strip_explain_analyze("EXPLAIN ANALYZE"), None);
        assert_eq!(strip_explain_analyze("EXPLAIN ANALYZE   "), None);
        assert_eq!(strip_explain_analyze("SELECT count(*) FROM t"), None);
        assert_eq!(strip_explain_analyze("EXPLAINANALYZE SELECT 1"), None);
        assert_eq!(strip_explain_analyze("é"), None);
    }

    #[test]
    fn bare_explain_prefix_strips_but_never_claims_analyze() {
        assert_eq!(strip_explain("EXPLAIN SELECT count(*) FROM t"), Some("SELECT count(*) FROM t"));
        assert_eq!(strip_explain("  explain\n select 1 from t"), Some("select 1 from t"));
        // EXPLAIN ANALYZE belongs to strip_explain_analyze.
        assert_eq!(strip_explain("EXPLAIN ANALYZE SELECT count(*) FROM t"), None);
        assert_eq!(strip_explain("explain analyze select 1 from t"), None);
        // No prefix, empty body, fused keyword.
        assert_eq!(strip_explain("SELECT count(*) FROM t"), None);
        assert_eq!(strip_explain("EXPLAIN"), None);
        assert_eq!(strip_explain("EXPLAIN   "), None);
        assert_eq!(strip_explain("EXPLAINSELECT 1"), None);
    }

    #[test]
    fn placeholder_styles_cannot_mix_and_slots_are_capped() {
        // Mixing ? and $n would silently alias slots; it's a parse error.
        assert!(parse_template("INSERT INTO t VALUES ($1, ?)").is_err());
        assert!(parse_template("UPDATE t SET a = ? WHERE rowid = $1").is_err());
        // A hostile $4000000000 must not size a 4-billion-entry table.
        let e = parse_template("INSERT INTO t VALUES ($4000000000)").unwrap_err();
        assert!(e.message.contains("exceeds the maximum"), "{e}");
    }
}
