//! Top-level statement parsing: SELECT plus the write statements the
//! serving layer routes through `SharedDatabase::write`.
//!
//! A-Store's storage model makes the array index the primary key, so the
//! write grammar addresses rows by `rowid` directly (paper §2: "the array
//! index is the primary key"):
//!
//! ```text
//! INSERT INTO t VALUES (lit, …) [, (lit, …)]* [;]
//! UPDATE t SET col = lit [, col = lit]* WHERE rowid = n [;]
//! DELETE FROM t WHERE rowid = n [;]
//! ```
//!
//! Literals are integers, floats, single-quoted strings, or `NULL`. Key
//! (AIR) columns take integer literals; the executor coerces them using
//! the table schema.

use astore_storage::types::{RowId, Value};

use crate::ast::SelectStmt;
use crate::lexer::{lex, Token};
use crate::parser::{parse, ParseError};

/// One parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A read-only SPJGA query.
    Select(SelectStmt),
    /// `INSERT INTO table VALUES (…), (…)` — one or more rows.
    Insert {
        /// Target table.
        table: String,
        /// Row literals, one `Vec<Value>` per row.
        rows: Vec<Vec<Value>>,
    },
    /// `UPDATE table SET col = lit, … WHERE rowid = n`.
    Update {
        /// Target table.
        table: String,
        /// `(column, new value)` pairs.
        assignments: Vec<(String, Value)>,
        /// The row to update (the array index is the primary key).
        row: RowId,
    },
    /// `DELETE FROM table WHERE rowid = n`.
    Delete {
        /// Target table.
        table: String,
        /// The row to delete.
        row: RowId,
    },
}

impl Statement {
    /// Returns `true` for statements that mutate the database.
    pub fn is_write(&self) -> bool {
        !matches!(self, Statement::Select(_))
    }
}

/// Parses one statement of any kind.
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let head = first_keyword(input).unwrap_or_default();
    match head.as_str() {
        "insert" | "update" | "delete" => {
            let toks = lex(input)?;
            let mut c = Cursor { toks, pos: 0 };
            let stmt = match head.as_str() {
                "insert" => c.insert_stmt()?,
                "update" => c.update_stmt()?,
                _ => c.delete_stmt()?,
            };
            c.eat(&Token::Semi);
            if !c.at_end() {
                return Err(c.err(format!("trailing input at token {}", c.peek_str())));
            }
            Ok(stmt)
        }
        _ => Ok(Statement::Select(parse(input)?)),
    }
}

/// The first word of the statement, lower-cased.
fn first_keyword(input: &str) -> Option<String> {
    input
        .split_whitespace()
        .next()
        .map(|w| w.trim_end_matches(|c: char| !c.is_ascii_alphanumeric()).to_ascii_lowercase())
}

/// Canonical cache key for SQL text: whitespace collapsed to single spaces,
/// everything outside single-quoted literals lower-cased, trailing `;`
/// stripped. Two spellings of the same statement normalize identically, so
/// the serving layer's plan cache hits on formatting variations.
pub fn normalize(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        if c == '\'' {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push('\'');
            // Copy the quoted literal verbatim, honouring '' escapes.
            while let Some(q) = chars.next() {
                out.push(q);
                if q == '\'' {
                    if chars.peek() == Some(&'\'') {
                        out.push(chars.next().unwrap());
                    } else {
                        break;
                    }
                }
            }
        } else if c.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.push(c.to_ascii_lowercase());
        }
    }
    while out.ends_with(';') || out.ends_with(' ') {
        out.pop();
    }
    out
}

struct Cursor {
    toks: Vec<Token>,
    pos: usize,
}

impl Cursor {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_str(&self) -> String {
        self.peek().map(|t| t.to_string()).unwrap_or_else(|| "<eof>".into())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: String) -> ParseError {
        ParseError { message }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {}", self.peek_str())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected keyword {kw}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// A literal: number, string, or `NULL`.
    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Value::Int(v)),
            Some(Token::Float(v)) => Ok(Value::Float(v)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::Minus) => match self.next() {
                Some(Token::Int(v)) => Ok(Value::Int(-v)),
                Some(Token::Float(v)) => Ok(Value::Float(-v)),
                other => Err(self.err(format!("expected number after '-', found {other:?}"))),
            },
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }

    /// `WHERE rowid = n`
    fn where_rowid(&mut self) -> Result<RowId, ParseError> {
        self.expect_kw("where")?;
        let col = self.ident()?;
        if !col.eq_ignore_ascii_case("rowid") {
            return Err(self.err(format!(
                "write statements address rows by primary key: expected `rowid`, found `{col}` \
                 (in A-Store the array index is the primary key)"
            )));
        }
        self.expect(&Token::Eq)?;
        match self.next() {
            Some(Token::Int(n)) if n >= 0 && n <= i64::from(u32::MAX) => Ok(n as RowId),
            other => Err(self.err(format!("expected row id, found {other:?}"))),
        }
    }

    fn insert_stmt(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.literal()?];
            while self.eat(&Token::Comma) {
                row.push(self.literal()?);
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn update_stmt(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            assignments.push((col, self.literal()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let row = self.where_rowid()?;
        Ok(Statement::Update { table, assignments, row })
    }

    fn delete_stmt(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let row = self.where_rowid()?;
        Ok(Statement::Delete { table, row })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_routes_to_select_parser() {
        let s = parse_statement("SELECT count(*) FROM t").unwrap();
        assert!(matches!(s, Statement::Select(_)));
        assert!(!s.is_write());
    }

    #[test]
    fn insert_single_and_multi_row() {
        let s = parse_statement("INSERT INTO dim VALUES (1, 2.5, 'x', NULL)").unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                table: "dim".into(),
                rows: vec![vec![
                    Value::Int(1),
                    Value::Float(2.5),
                    Value::Str("x".into()),
                    Value::Null
                ]],
            }
        );
        let s = parse_statement("insert into t values (1), (-2), (3);").unwrap();
        let Statement::Insert { rows, .. } = s else { panic!() };
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], vec![Value::Int(-2)]);
    }

    #[test]
    fn update_by_rowid() {
        let s = parse_statement("UPDATE t SET a = 5, b = 'y' WHERE rowid = 7").unwrap();
        assert_eq!(
            s,
            Statement::Update {
                table: "t".into(),
                assignments: vec![
                    ("a".into(), Value::Int(5)),
                    ("b".into(), Value::Str("y".into()))
                ],
                row: 7,
            }
        );
    }

    #[test]
    fn delete_by_rowid() {
        let s = parse_statement("DELETE FROM t WHERE rowid = 3;").unwrap();
        assert_eq!(s, Statement::Delete { table: "t".into(), row: 3 });
        assert!(s.is_write());
    }

    #[test]
    fn write_errors() {
        assert!(parse_statement("INSERT INTO t").is_err());
        assert!(parse_statement("INSERT INTO t VALUES 1, 2").is_err());
        assert!(parse_statement("DELETE FROM t WHERE other = 3").is_err());
        assert!(parse_statement("UPDATE t SET a = 1").is_err());
        assert!(parse_statement("DELETE FROM t WHERE rowid = -1").is_err());
        assert!(parse_statement("INSERT INTO t VALUES (1) garbage").is_err());
    }

    #[test]
    fn normalize_collapses_and_lowercases() {
        assert_eq!(
            normalize("  SELECT   a,B FROM\tt  WHERE x = 'MiXeD Case'  ; "),
            "select a,b from t where x = 'MiXeD Case'"
        );
        assert_eq!(normalize("select 'it''s'"), "select 'it''s'");
        assert_eq!(
            normalize("SELECT 1"),
            normalize("select    1;"),
            "formatting variants share one cache key"
        );
    }
}
