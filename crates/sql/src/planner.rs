//! Binds a parsed [`SelectStmt`] to a database schema, producing an
//! executable [`Query`].
//!
//! This performs the paper's §3 transformation: equi-join conditions in the
//! WHERE clause are validated against the schema's AIR edges and then
//! *dropped* — "we reserve only the join operations of Q and truncate all
//! the other operations"; joins never execute, the universal-table scan
//! does. Everything else (selections, grouping, aggregation, ordering)
//! binds to concrete tables and columns.

use astore_core::expr::{Lit, MeasureExpr, Pred};
use astore_core::graph::JoinGraph;
use astore_core::query::{AggFunc, Aggregate, OrderKey, Query, SortOrder};
use astore_storage::catalog::Database;
use astore_storage::types::DataType;

use crate::ast::{Arith, ColName, Cond, Scalar, SelectItem, SelectStmt};
use crate::parser::{parse, ParseError};

/// A planning error.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan error: {}", self.message)
    }
}

impl std::error::Error for PlanError {}

impl From<ParseError> for PlanError {
    fn from(e: ParseError) -> Self {
        PlanError { message: e.to_string() }
    }
}

fn err<T>(message: impl Into<String>) -> Result<T, PlanError> {
    Err(PlanError { message: message.into() })
}

/// Parses and plans a SQL string against a database.
pub fn sql_to_query(sql: &str, db: &Database) -> Result<Query, PlanError> {
    plan(&parse(sql)?, db)
}

/// Plans a parsed statement against a database.
///
/// A statement containing `?`/`$n` placeholders plans to a query
/// *template* whose parameter slots must be bound
/// ([`Query::bind_params`]) before execution; use
/// [`plan_with_params`] to also learn each slot's expected column type.
pub fn plan(stmt: &SelectStmt, db: &Database) -> Result<Query, PlanError> {
    plan_with_params(stmt, db).map(|(q, _)| q)
}

/// Plans a parsed statement, returning the query (template) together with
/// the column type each parameter slot is compared against — the type
/// information the bind step checks incoming values with. Slot `i` of the
/// returned vector is `None` only if the statement never references `$i+1`
/// (a numbering gap).
pub fn plan_with_params(
    stmt: &SelectStmt,
    db: &Database,
) -> Result<(Query, Vec<Option<DataType>>), PlanError> {
    // FROM tables must exist.
    for t in &stmt.tables {
        if db.table(t).is_none() {
            return err(format!("unknown table {t:?}"));
        }
    }
    let binder = Binder { db, tables: &stmt.tables };

    // Bind the root: the single join-graph root covering all FROM tables.
    let graph = JoinGraph::build(db);
    let froms: Vec<&str> = stmt.tables.iter().map(String::as_str).collect();
    let Some(root) = graph.root_covering(&froms) else {
        return err(format!("no fact table reaches all of {:?}", stmt.tables));
    };
    let root = root.to_owned();

    let mut query = Query::new().root(root.clone());
    let mut param_types: Vec<Option<DataType>> = Vec::new();

    // WHERE: validate joins, group selections per table.
    if let Some(w) = &stmt.where_clause {
        for cond in w.clone().conjuncts() {
            match cond {
                Cond::JoinEq(a, b) => binder.validate_join(&graph, &a, &b)?,
                other => {
                    let (table, pred) = binder.bind_cond(&other, &mut param_types)?;
                    query = query.filter(table, pred);
                }
            }
        }
    }

    // GROUP BY.
    let mut group_out_names = Vec::new();
    for g in &stmt.group_by {
        let (table, column) = binder.resolve(g)?;
        group_out_names.push(column.clone());
        query = query.group(table, column);
    }

    // SELECT list: plain columns must be grouping columns; aggregates bind
    // their measures against the root.
    let mut has_agg = false;
    let mut used_aliases: Vec<String> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Col { col, alias } => {
                let (_, column) = binder.resolve(col)?;
                if !group_out_names.contains(&column) {
                    return err(format!("column {col} appears in SELECT but not in GROUP BY"));
                }
                if alias.is_some() {
                    return err("aliases on grouping columns are not supported".to_string());
                }
            }
            SelectItem::Agg { func, arg, alias } => {
                has_agg = true;
                let func = match func.as_str() {
                    "sum" => AggFunc::Sum,
                    "count" => AggFunc::Count,
                    "min" => AggFunc::Min,
                    "max" => AggFunc::Max,
                    "avg" => AggFunc::Avg,
                    other => return err(format!("unknown aggregate {other:?}")),
                };
                let expr = match arg {
                    None => {
                        if func != AggFunc::Count {
                            return err("only count(*) may omit its argument".to_string());
                        }
                        None
                    }
                    Some(a) => Some(binder.bind_measure(a, &root)?),
                };
                let alias = alias.clone().unwrap_or_else(|| {
                    let base = match func {
                        AggFunc::Sum => "sum",
                        AggFunc::Count => "count",
                        AggFunc::Min => "min",
                        AggFunc::Max => "max",
                        AggFunc::Avg => "avg",
                    };
                    let mut name = base.to_owned();
                    let mut i = 1;
                    while used_aliases.contains(&name) || group_out_names.contains(&name) {
                        i += 1;
                        name = format!("{base}{i}");
                    }
                    name
                });
                used_aliases.push(alias.clone());
                query = query.agg(match (func, expr) {
                    (AggFunc::Count, None) => Aggregate::count(alias),
                    (f, Some(e)) => Aggregate { func: f, expr: Some(e), alias },
                    _ => unreachable!(),
                });
            }
        }
    }
    if !has_agg {
        return err(
            "A-Store executes SPJGA queries only; the SELECT list needs at least one aggregate"
                .to_string(),
        );
    }

    // ORDER BY keys must name an output column. Exact match wins (aliases
    // keep the case they were written with, and may differ only by case);
    // a case-insensitive match is the fallback.
    let outputs = query.output_names();
    for o in &stmt.order_by {
        let Some(pos) = outputs
            .iter()
            .position(|c| *c == o.name)
            .or_else(|| outputs.iter().position(|c| c.eq_ignore_ascii_case(&o.name)))
        else {
            return err(format!(
                "ORDER BY key {:?} is not an output column (outputs: {outputs:?})",
                o.name
            ));
        };
        query.order_by.push(OrderKey {
            output: outputs[pos].clone(),
            order: if o.desc { SortOrder::Desc } else { SortOrder::Asc },
        });
    }
    query.limit = stmt.limit;
    if param_types.len() < stmt.param_count() {
        param_types.resize(stmt.param_count(), None);
    }
    Ok((query, param_types))
}

struct Binder<'a> {
    db: &'a Database,
    tables: &'a [String],
}

impl Binder<'_> {
    /// Resolves a column name to `(table, column)`.
    fn resolve(&self, col: &ColName) -> Result<(String, String), PlanError> {
        if let Some(t) = &col.table {
            if !self.tables.contains(t) {
                return err(format!("table {t:?} not in FROM clause"));
            }
            let table = self.db.table(t).expect("FROM tables checked");
            if table.schema().position(&col.column).is_none() {
                return err(format!("no column {:?} in table {t:?}", col.column));
            }
            return Ok((t.clone(), col.column.clone()));
        }
        let owners: Vec<&String> = self
            .tables
            .iter()
            .filter(|t| {
                self.db.table(t).is_some_and(|tb| tb.schema().position(&col.column).is_some())
            })
            .collect();
        match owners.as_slice() {
            [t] => Ok(((*t).clone(), col.column.clone())),
            [] => err(format!("column {:?} not found in any FROM table", col.column)),
            many => err(format!("column {:?} is ambiguous across tables {many:?}", col.column)),
        }
    }

    /// Validates an equi-join condition against the AIR edges: one side
    /// must be a foreign-key (AIR) column and the other side must denote
    /// the referenced table's (virtual) primary key. The condition is then
    /// dropped — A-Store's joins are implicit.
    fn validate_join(&self, graph: &JoinGraph, a: &ColName, b: &ColName) -> Result<(), PlanError> {
        for (fk, pk) in [(a, b), (b, a)] {
            if let Ok((t, c)) = self.resolve(fk) {
                let col = self.db.table(&t).unwrap().column(&c).unwrap();
                if let Some((target, _)) = col.as_key() {
                    // The PK side: either unresolvable (virtual array-index
                    // key, e.g. `c_custkey`) or any column of the target.
                    let pk_ok = match self.resolve(pk) {
                        Ok((pt, _)) => pt == target,
                        Err(_) => {
                            pk.table.as_deref().is_none_or(|qt| qt == target)
                                && self.tables.iter().any(|ft| ft == target)
                        }
                    };
                    if pk_ok {
                        // Sanity: the edge must exist in the join graph.
                        if graph.out_edges(&t).iter().any(|(kc, tt)| kc == &c && tt == target) {
                            return Ok(());
                        }
                    }
                }
            }
        }
        err(format!(
            "join condition {a} = {b} does not follow a foreign-key (AIR) edge; \
             A-Store supports PK-FK joins only"
        ))
    }

    /// Binds a WHERE conjunct to `(table, predicate)`; every column inside
    /// must belong to the same table. Parameter slots found along the way
    /// record the column type they are compared against into `params`.
    fn bind_cond(
        &self,
        cond: &Cond,
        params: &mut Vec<Option<DataType>>,
    ) -> Result<(String, Pred), PlanError> {
        let mut table: Option<String> = None;
        let pred = self.cond_to_pred(cond, &mut table, params)?;
        match table {
            Some(t) => Ok((t, pred)),
            None => err("predicate references no column".to_string()),
        }
    }

    /// The declared type of a resolved column.
    fn dtype_of(&self, table: &str, column: &str) -> DataType {
        self.db
            .table(table)
            .expect("resolved table exists")
            .schema()
            .defs()
            .iter()
            .find(|d| d.name == column)
            .expect("resolved column exists")
            .dtype
            .clone()
    }

    fn cond_to_pred(
        &self,
        cond: &Cond,
        table: &mut Option<String>,
        params: &mut Vec<Option<DataType>>,
    ) -> Result<Pred, PlanError> {
        // Binds the column and returns its name plus declared type, so
        // parameter slots learn what they will be compared against.
        let mut bind_col = |col: &ColName| -> Result<(String, DataType), PlanError> {
            let (t, c) = self.resolve(col)?;
            match table {
                Some(prev) if *prev != t => err(format!(
                    "predicate mixes columns of tables {prev:?} and {t:?}; \
                     split it into per-table conjuncts"
                )),
                _ => {
                    let dtype = self.dtype_of(&t, &c);
                    *table = Some(t);
                    Ok((c, dtype))
                }
            }
        };
        Ok(match cond {
            Cond::Cmp { col, op, rhs } => {
                let (c, dt) = bind_col(col)?;
                Pred::Cmp { col: c, op: *op, lit: scalar_to_lit(rhs, &dt, params)? }
            }
            Cond::Between { col, lo, hi } => {
                let (c, dt) = bind_col(col)?;
                Pred::Between {
                    col: c,
                    lo: scalar_to_lit(lo, &dt, params)?,
                    hi: scalar_to_lit(hi, &dt, params)?,
                }
            }
            Cond::InList { col, list } => {
                let (c, dt) = bind_col(col)?;
                Pred::InList {
                    col: c,
                    lits: list
                        .iter()
                        .map(|s| scalar_to_lit(s, &dt, params))
                        .collect::<Result<_, _>>()?,
                }
            }
            Cond::And(cs) => Pred::And(
                cs.iter().map(|c| self.cond_to_pred(c, table, params)).collect::<Result<_, _>>()?,
            ),
            Cond::Or(cs) => Pred::Or(
                cs.iter().map(|c| self.cond_to_pred(c, table, params)).collect::<Result<_, _>>()?,
            ),
            Cond::Not(c) => Pred::Not(Box::new(self.cond_to_pred(c, table, params)?)),
            Cond::JoinEq(a, b) => {
                return err(format!("join condition {a} = {b} nested under OR/NOT is unsupported"))
            }
        })
    }

    /// Binds a measure expression; all columns must live on the root table.
    fn bind_measure(&self, a: &Arith, root: &str) -> Result<MeasureExpr, PlanError> {
        Ok(match a {
            Arith::Num(v) => MeasureExpr::Const(*v),
            Arith::Col(c) => {
                let (t, col) = self.resolve(c)?;
                if t != root {
                    return err(format!(
                        "measure column {c} lives on {t:?}; aggregates read the fact table \
                         ({root:?}) only"
                    ));
                }
                MeasureExpr::Col(col)
            }
            Arith::Add(x, y) => MeasureExpr::Add(
                Box::new(self.bind_measure(x, root)?),
                Box::new(self.bind_measure(y, root)?),
            ),
            Arith::Sub(x, y) => MeasureExpr::Sub(
                Box::new(self.bind_measure(x, root)?),
                Box::new(self.bind_measure(y, root)?),
            ),
            Arith::Mul(x, y) => MeasureExpr::Mul(
                Box::new(self.bind_measure(x, root)?),
                Box::new(self.bind_measure(y, root)?),
            ),
        })
    }
}

/// Records the column type a parameter slot is used with, enforcing the
/// `u16::MAX` slot cap and rejecting string/numeric family conflicts (no
/// single value kind could ever satisfy both uses). Shared by the SELECT
/// planner and the write-template preparer so the rules cannot diverge.
pub(crate) fn record_param_type(
    params: &mut Vec<Option<DataType>>,
    slot: usize,
    dtype: DataType,
) -> Result<(), String> {
    if slot > usize::from(u16::MAX) {
        return Err(format!("parameter ${} is out of range", slot + 1));
    }
    if params.len() <= slot {
        params.resize(slot + 1, None);
    }
    let stringy = |d: &DataType| matches!(d, DataType::Str | DataType::Dict);
    match &params[slot] {
        None => params[slot] = Some(dtype),
        Some(prev) if stringy(prev) != stringy(&dtype) => {
            return Err(format!(
                "parameter ${} is used with both string and numeric columns",
                slot + 1
            ));
        }
        Some(_) => {}
    }
    Ok(())
}

/// Converts one scalar to a predicate literal. A parameter slot becomes
/// [`Lit::Param`] and records `dtype` — the column it is compared against —
/// as its expected type.
fn scalar_to_lit(
    s: &Scalar,
    dtype: &DataType,
    params: &mut Vec<Option<DataType>>,
) -> Result<Lit, PlanError> {
    Ok(match s {
        Scalar::Int(v) => Lit::Int(*v),
        Scalar::Float(v) => Lit::Float(*v),
        Scalar::Str(v) => Lit::Str(v.clone()),
        Scalar::Param(slot) => {
            record_param_type(params, *slot, dtype.clone())
                .map_err(|message| PlanError { message })?;
            Lit::Param(*slot as u16)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_core::exec::{execute, ExecOptions};
    use astore_storage::prelude::*;

    fn star_db() -> Database {
        let mut db = Database::new();
        let mut customer = Table::new(
            "customer",
            Schema::new(vec![
                ColumnDef::new("c_nation", DataType::Dict),
                ColumnDef::new("c_region", DataType::Dict),
            ]),
        );
        for (n, r) in [("CHINA", "ASIA"), ("JAPAN", "ASIA"), ("BRAZIL", "AMERICA")] {
            customer.append_row(&[Value::Str(n.into()), Value::Str(r.into())]);
        }
        let mut date =
            Table::new("date", Schema::new(vec![ColumnDef::new("d_year", DataType::I32)]));
        for y in [1992, 1993] {
            date.append_row(&[Value::Int(y)]);
        }
        let mut lineorder = Table::new(
            "lineorder",
            Schema::new(vec![
                ColumnDef::new("lo_custkey", DataType::Key { target: "customer".into() }),
                ColumnDef::new("lo_orderdate", DataType::Key { target: "date".into() }),
                ColumnDef::new("lo_revenue", DataType::I64),
                ColumnDef::new("lo_discount", DataType::I32),
            ]),
        );
        for (c, d, r, disc) in [(0u32, 0u32, 100i64, 1i64), (1, 1, 200, 2), (2, 0, 300, 3)] {
            lineorder.append_row(&[Value::Key(c), Value::Key(d), Value::Int(r), Value::Int(disc)]);
        }
        db.add_table(customer);
        db.add_table(date);
        db.add_table(lineorder);
        db
    }

    #[test]
    fn plans_and_executes_a_star_query() {
        let db = star_db();
        let q = sql_to_query(
            "SELECT c_nation, sum(lo_revenue) AS revenue \
             FROM customer, lineorder, date \
             WHERE lo_custkey = c_custkey AND lo_orderdate = d_datekey \
               AND c_region = 'ASIA' \
             GROUP BY c_nation ORDER BY revenue DESC",
            &db,
        )
        .unwrap();
        assert_eq!(q.root.as_deref(), Some("lineorder"));
        assert_eq!(q.selections.len(), 1);
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(
            out.result.rows,
            vec![
                vec![Value::Str("JAPAN".into()), Value::Float(200.0)],
                vec![Value::Str("CHINA".into()), Value::Float(100.0)],
            ]
        );
    }

    #[test]
    fn join_conditions_are_validated_and_dropped() {
        let db = star_db();
        // A join that follows no AIR edge is rejected.
        let bad =
            sql_to_query("SELECT count(*) FROM customer, date WHERE c_nation = d_datekey", &db);
        assert!(bad.is_err());
        assert!(bad.unwrap_err().message.contains("PK-FK"));
    }

    #[test]
    fn count_star_and_default_aliases() {
        let db = star_db();
        let q =
            sql_to_query("SELECT count(*), sum(lo_revenue), sum(lo_discount) FROM lineorder", &db)
                .unwrap();
        assert_eq!(q.output_names(), vec!["count", "sum", "sum2"]);
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(out.result.rows[0][0], Value::Int(3));
        assert_eq!(out.result.rows[0][1], Value::Float(600.0));
    }

    #[test]
    fn select_column_must_be_grouped() {
        let db = star_db();
        let e = sql_to_query(
            "SELECT c_nation, count(*) FROM customer, lineorder WHERE lo_custkey = c_custkey",
            &db,
        );
        assert!(e.unwrap_err().message.contains("GROUP BY"));
    }

    #[test]
    fn pure_projection_rejected() {
        let db = star_db();
        let e = sql_to_query("SELECT c_nation FROM customer GROUP BY c_nation", &db);
        assert!(e.unwrap_err().message.contains("SPJGA"));
    }

    #[test]
    fn ambiguous_and_unknown_columns() {
        let db = star_db();
        let e = sql_to_query("SELECT count(*) FROM lineorder WHERE nonexistent = 1", &db);
        assert!(e.unwrap_err().message.contains("not found"));
        let e = sql_to_query("SELECT count(*) FROM ghost", &db);
        assert!(e.unwrap_err().message.contains("unknown table"));
    }

    #[test]
    fn measure_must_be_on_fact_table() {
        let db = star_db();
        let e = sql_to_query(
            "SELECT sum(d_year) FROM lineorder, date WHERE lo_orderdate = d_datekey",
            &db,
        );
        assert!(e.unwrap_err().message.contains("fact table"));
    }

    #[test]
    fn order_by_prefers_exact_alias_match_over_case_fold() {
        let db = star_db();
        // Two aliases differing only in case: ORDER BY x must bind the
        // exact-case alias, not the first case-insensitive hit.
        let q = sql_to_query(
            "SELECT sum(lo_revenue) AS X, sum(lo_discount) AS x FROM lineorder ORDER BY x",
            &db,
        )
        .unwrap();
        assert_eq!(q.order_by[0].output, "x");
        // Case-insensitive fallback still resolves lone mismatches.
        let q = sql_to_query("SELECT sum(lo_revenue) AS Rev FROM lineorder ORDER BY rev DESC", &db)
            .unwrap();
        assert_eq!(q.order_by[0].output, "Rev");
    }

    #[test]
    fn order_by_must_name_an_output() {
        let db = star_db();
        let e = sql_to_query("SELECT count(*) AS n FROM lineorder ORDER BY revenue", &db);
        assert!(e.unwrap_err().message.contains("not an output column"));
    }

    #[test]
    fn cross_table_predicate_rejected() {
        let db = star_db();
        let e = sql_to_query(
            "SELECT count(*) FROM customer, date, lineorder \
             WHERE lo_custkey = c_custkey AND lo_orderdate = d_datekey \
               AND (c_region = 'ASIA' OR d_year = 1992)",
            &db,
        );
        assert!(e.unwrap_err().message.contains("mixes columns"));
    }

    #[test]
    fn measure_arithmetic_binds() {
        let db = star_db();
        let q = sql_to_query(
            "SELECT sum(lo_revenue * (1 - lo_discount * 0.1)) AS adj FROM lineorder",
            &db,
        )
        .unwrap();
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        // 100*.9 + 200*.8 + 300*.7 = 460
        assert_eq!(out.result.rows, vec![vec![Value::Float(460.0)]]);
    }
}
