//! The abstract syntax tree of the SPJGA SQL subset.

use astore_core::expr::CmpOp;

/// A possibly table-qualified column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColName {
    /// Qualifier, if written (`lineorder.lo_revenue`).
    pub table: Option<String>,
    /// The column.
    pub column: String,
}

impl std::fmt::Display for ColName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A scalar literal or parameter placeholder.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// A parameter slot (`?` / `$n` in the source), 0-based.
    Param(usize),
}

impl std::fmt::Display for Scalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scalar::Int(v) => write!(f, "{v}"),
            Scalar::Float(v) if v.fract() == 0.0 && v.is_finite() => write!(f, "{v:.1}"),
            Scalar::Float(v) => write!(f, "{v}"),
            Scalar::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Scalar::Param(i) => write!(f, "${}", i + 1),
        }
    }
}

/// An arithmetic expression (measure expressions inside aggregates).
#[derive(Debug, Clone, PartialEq)]
pub enum Arith {
    /// Column reference.
    Col(ColName),
    /// Numeric literal.
    Num(f64),
    /// `a + b`
    Add(Box<Arith>, Box<Arith>),
    /// `a - b`
    Sub(Box<Arith>, Box<Arith>),
    /// `a * b`
    Mul(Box<Arith>, Box<Arith>),
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain (grouping) column, with an optional alias.
    Col {
        /// The column.
        col: ColName,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// An aggregate call.
    Agg {
        /// Function name, lower-cased (`sum`, `count`, `min`, `max`, `avg`).
        func: String,
        /// Argument; `None` for `count(*)`.
        arg: Option<Arith>,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A WHERE-clause condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `col <op> literal`.
    Cmp {
        /// Column.
        col: ColName,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        rhs: Scalar,
    },
    /// `colA = colB` — an equi-join condition. A-Store drops these after
    /// validating they follow an AIR edge (joins are implicit, paper §3).
    JoinEq(ColName, ColName),
    /// `col BETWEEN lo AND hi`.
    Between {
        /// Column.
        col: ColName,
        /// Lower bound.
        lo: Scalar,
        /// Upper bound.
        hi: Scalar,
    },
    /// `col IN (a, b, …)`.
    InList {
        /// Column.
        col: ColName,
        /// Accepted values.
        list: Vec<Scalar>,
    },
    /// Conjunction.
    And(Vec<Cond>),
    /// Disjunction.
    Or(Vec<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// Flattens a top-level conjunction.
    pub fn conjuncts(self) -> Vec<Cond> {
        match self {
            Cond::And(cs) => cs.into_iter().flat_map(Cond::conjuncts).collect(),
            other => vec![other],
        }
    }

    /// Visits every scalar in the condition tree.
    pub fn visit_scalars(&self, f: &mut impl FnMut(&Scalar)) {
        match self {
            Cond::Cmp { rhs, .. } => f(rhs),
            Cond::Between { lo, hi, .. } => {
                f(lo);
                f(hi);
            }
            Cond::InList { list, .. } => list.iter().for_each(f),
            Cond::And(cs) | Cond::Or(cs) => {
                cs.iter().for_each(|c| c.visit_scalars(f));
            }
            Cond::Not(c) => c.visit_scalars(f),
            Cond::JoinEq(..) => {}
        }
    }

    /// Visits every scalar in the condition tree, mutably (parameter
    /// extraction and substitution both ride on this).
    pub fn visit_scalars_mut(&mut self, f: &mut impl FnMut(&mut Scalar)) {
        match self {
            Cond::Cmp { rhs, .. } => f(rhs),
            Cond::Between { lo, hi, .. } => {
                f(lo);
                f(hi);
            }
            Cond::InList { list, .. } => list.iter_mut().for_each(f),
            Cond::And(cs) | Cond::Or(cs) => {
                cs.iter_mut().for_each(|c| c.visit_scalars_mut(f));
            }
            Cond::Not(c) => c.visit_scalars_mut(f),
            Cond::JoinEq(..) => {}
        }
    }
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderItem {
    /// Output-column name (a select-list column or alias).
    pub name: String,
    /// Descending?
    pub desc: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM tables.
    pub tables: Vec<String>,
    /// WHERE clause.
    pub where_clause: Option<Cond>,
    /// GROUP BY columns.
    pub group_by: Vec<ColName>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderItem>,
    /// LIMIT.
    pub limit: Option<usize>,
}

impl SelectStmt {
    /// Number of parameter slots this statement references: one more than
    /// the highest slot index (0 when fully literal).
    pub fn param_count(&self) -> usize {
        let mut max = 0usize;
        if let Some(w) = &self.where_clause {
            w.visit_scalars(&mut |s| {
                if let Scalar::Param(i) = s {
                    max = max.max(*i + 1);
                }
            });
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colname_display() {
        let q = ColName { table: Some("t".into()), column: "c".into() };
        assert_eq!(q.to_string(), "t.c");
        let u = ColName { table: None, column: "c".into() };
        assert_eq!(u.to_string(), "c");
    }

    #[test]
    fn conjunct_flattening() {
        let c = Cond::And(vec![
            Cond::Cmp {
                col: ColName { table: None, column: "a".into() },
                op: CmpOp::Eq,
                rhs: Scalar::Int(1),
            },
            Cond::And(vec![Cond::Not(Box::new(Cond::Or(vec![])))]),
        ]);
        assert_eq!(c.conjuncts().len(), 2);
    }
}
