//! Recursive-descent parser for the SPJGA SQL subset.
//!
//! Supported grammar (keywords case-insensitive):
//!
//! ```text
//! SELECT item (',' item)*
//! FROM ident (',' ident)*
//! [WHERE cond]
//! [GROUP BY col (',' col)*]
//! [ORDER BY name [ASC|DESC] (',' …)*]
//! [LIMIT n] [';']
//!
//! item  := agg '(' ('*' | arith) ')' [AS? ident] | col [AS? ident]
//! arith := term (('+'|'-') term)* ; term := factor ('*' factor)*
//! factor:= number | col | '(' arith ')' | '-' factor
//! cond  := and (OR and)* ; and := not (AND not)*
//! not   := NOT not | '(' cond ')' | col (cmp (scalar|col) | BETWEEN … | IN (…))
//! scalar:= number | string | '?' | '$n'
//! ```
//!
//! Parameter placeholders: `?` takes the next free 0-based slot in source
//! order; `$n` names slot `n-1` explicitly and may repeat. The two styles
//! cannot mix within one statement (their numberings would silently
//! alias). Placeholders are accepted wherever a comparison/BETWEEN/IN
//! literal is — not in measure arithmetic or LIMIT, whose values shape
//! the plan itself.

use astore_core::expr::CmpOp;

use crate::ast::{Arith, ColName, Cond, OrderItem, Scalar, SelectItem, SelectStmt};
use crate::lexer::{lex_spanned, LexError, SpannedToken, Token};

/// A parse error, with the byte span of the offending token when known.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Byte range in the source text the error points at, if known.
    pub span: Option<(usize, usize)>,
}

impl ParseError {
    /// An error without position information.
    pub fn new(message: impl Into<String>) -> Self {
        ParseError { message: message.into(), span: None }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)?;
        if let Some((start, _)) = self.span {
            write!(f, " (at byte {start})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.to_string(), span: Some((e.pos, e.pos + 1)) }
    }
}

const AGG_FUNCS: [&str; 5] = ["sum", "count", "min", "max", "avg"];

/// Parses one SELECT statement.
pub fn parse(input: &str) -> Result<SelectStmt, ParseError> {
    let toks = lex_spanned(input)?;
    let mut p = Parser { toks, pos: 0, anon_params: 0, numbered_params: false };
    let stmt = p.select_stmt()?;
    p.eat_token(&Token::Semi);
    if !p.at_end() {
        return Err(p.err(format!("trailing input at token {}", p.peek_str())));
    }
    Ok(stmt)
}

pub(crate) struct Parser {
    toks: Vec<SpannedToken>,
    pos: usize,
    anon_params: usize,
    numbered_params: bool,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.toks.get(self.pos + off).map(|s| &s.tok)
    }

    fn peek_str(&self) -> String {
        self.peek().map(|t| t.to_string()).unwrap_or_else(|| "<eof>".into())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// An error pointing at the *current* token (or just past the last one).
    fn err(&self, message: String) -> ParseError {
        let span = match self.toks.get(self.pos) {
            Some(s) => Some((s.start, s.end)),
            None => self.toks.last().map(|s| (s.end, s.end + 1)),
        };
        ParseError { message, span }
    }

    /// An error pointing at the token just consumed.
    fn err_prev(&self, message: String) -> ParseError {
        let span = self.toks.get(self.pos.saturating_sub(1)).map(|s| (s.start, s.end));
        ParseError { message, span }
    }

    /// Consumes the given token if present.
    fn eat_token(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {}", self.peek_str())))
        }
    }

    /// Consumes an identifier equal (case-insensitively) to `kw`.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}, found {}", self.peek_str())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err_prev(format!("expected identifier, found {other:?}"))),
        }
    }

    fn colname(&mut self) -> Result<ColName, ParseError> {
        let first = self.ident()?;
        if self.eat_token(&Token::Dot) {
            let column = self.ident()?;
            Ok(ColName { table: Some(first), column })
        } else {
            Ok(ColName { table: None, column: first })
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw("select")?;
        let mut items = vec![self.select_item()?];
        while self.eat_token(&Token::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut tables = vec![self.ident()?];
        while self.eat_token(&Token::Comma) {
            tables.push(self.ident()?);
        }
        let where_clause = if self.eat_kw("where") { Some(self.or_cond()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.colname()?);
            while self.eat_token(&Token::Comma) {
                group_by.push(self.colname()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let col = self.colname()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { name: col.column, desc });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(self.err_prev(format!("expected LIMIT count, found {other:?}")))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt { items, tables, where_clause, group_by, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        // Aggregate call?
        if let Some(Token::Ident(name)) = self.peek() {
            let lower = name.to_ascii_lowercase();
            if AGG_FUNCS.contains(&lower.as_str()) && self.peek_at(1) == Some(&Token::LParen) {
                self.pos += 2; // func + '('
                let arg = if self.eat_token(&Token::Star) { None } else { Some(self.arith()?) };
                self.expect_token(&Token::RParen)?;
                let alias = self.alias()?;
                return Ok(SelectItem::Agg { func: lower, arg, alias });
            }
        }
        let col = self.colname()?;
        let alias = self.alias()?;
        Ok(SelectItem::Col { col, alias })
    }

    fn alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        // Bare alias: an identifier that is not a clause keyword.
        if let Some(Token::Ident(s)) = self.peek() {
            let lower = s.to_ascii_lowercase();
            if !["from", "where", "group", "order", "limit", "and", "or", "asc", "desc", "by"]
                .contains(&lower.as_str())
            {
                let s = s.clone();
                self.pos += 1;
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    fn arith(&mut self) -> Result<Arith, ParseError> {
        let mut left = self.term()?;
        loop {
            if self.eat_token(&Token::Plus) {
                left = Arith::Add(Box::new(left), Box::new(self.term()?));
            } else if self.eat_token(&Token::Minus) {
                left = Arith::Sub(Box::new(left), Box::new(self.term()?));
            } else {
                return Ok(left);
            }
        }
    }

    fn term(&mut self) -> Result<Arith, ParseError> {
        let mut left = self.factor()?;
        while self.eat_token(&Token::Star) {
            left = Arith::Mul(Box::new(left), Box::new(self.factor()?));
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Arith, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(Arith::Num(v as f64))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(Arith::Num(v))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(Arith::Sub(Box::new(Arith::Num(0.0)), Box::new(self.factor()?)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.arith()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(_)) => Ok(Arith::Col(self.colname()?)),
            Some(Token::Param(_)) => Err(self.err(
                "parameter placeholders are not allowed inside measure expressions \
                 (their values shape the plan)"
                    .into(),
            )),
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn or_cond(&mut self) -> Result<Cond, ParseError> {
        let mut parts = vec![self.and_cond()?];
        while self.eat_kw("or") {
            parts.push(self.and_cond()?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Cond::Or(parts) })
    }

    fn and_cond(&mut self) -> Result<Cond, ParseError> {
        let mut parts = vec![self.not_cond()?];
        while self.eat_kw("and") {
            parts.push(self.not_cond()?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Cond::And(parts) })
    }

    fn not_cond(&mut self) -> Result<Cond, ParseError> {
        if self.eat_kw("not") {
            return Ok(Cond::Not(Box::new(self.not_cond()?)));
        }
        if self.eat_token(&Token::LParen) {
            let c = self.or_cond()?;
            self.expect_token(&Token::RParen)?;
            return Ok(c);
        }
        let col = self.colname()?;
        // BETWEEN
        if self.eat_kw("between") {
            let lo = self.scalar()?;
            self.expect_kw("and")?;
            let hi = self.scalar()?;
            return Ok(Cond::Between { col, lo, hi });
        }
        // [NOT] IN
        if self.peek_kw("in") {
            self.pos += 1;
            self.expect_token(&Token::LParen)?;
            let mut list = vec![self.scalar()?];
            while self.eat_token(&Token::Comma) {
                list.push(self.scalar()?);
            }
            self.expect_token(&Token::RParen)?;
            return Ok(Cond::InList { col, list });
        }
        // Comparison.
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => {
                return Err(self.err_prev(format!("expected comparison operator, found {other:?}")))
            }
        };
        // RHS: literal, placeholder, or column (join condition).
        match self.peek().cloned() {
            Some(Token::Ident(_)) => {
                let rhs = self.colname()?;
                if op != CmpOp::Eq {
                    return Err(ParseError::new(
                        "only equality joins are supported between columns",
                    ));
                }
                Ok(Cond::JoinEq(col, rhs))
            }
            _ => Ok(Cond::Cmp { col, op, rhs: self.scalar()? }),
        }
    }

    fn scalar(&mut self) -> Result<Scalar, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Scalar::Int(v)),
            Some(Token::Float(v)) => Ok(Scalar::Float(v)),
            Some(Token::Str(s)) => Ok(Scalar::Str(s)),
            Some(Token::Param(p)) => Ok(Scalar::Param(self.param_slot(p)?)),
            Some(Token::Minus) => match self.next() {
                Some(Token::Int(v)) => Ok(Scalar::Int(-v)),
                Some(Token::Float(v)) => Ok(Scalar::Float(-v)),
                other => Err(self.err_prev(format!("expected number after '-', found {other:?}"))),
            },
            other => Err(self.err_prev(format!("expected literal, found {other:?}"))),
        }
    }

    /// Resolves a placeholder token to a 0-based slot: `?` takes the next
    /// sequential slot, `$n` names slot `n-1` explicitly. The two styles
    /// cannot mix (their numberings would silently alias), and slots are
    /// capped at `u16::MAX` — the width of `Lit::Param` — so a hostile
    /// `$4000000000` cannot request a giant parameter table.
    fn param_slot(&mut self, p: Option<u32>) -> Result<usize, ParseError> {
        resolve_param_slot(p, &mut self.anon_params, &mut self.numbered_params)
            .map_err(|m| self.err_prev(m))
    }
}

/// Shared `?`/`$n` slot resolution (also used by the write-statement
/// cursor). Errors are returned as bare messages for the caller to span.
pub(crate) fn resolve_param_slot(
    p: Option<u32>,
    anon_count: &mut usize,
    saw_numbered: &mut bool,
) -> Result<usize, String> {
    const MAX_SLOTS: usize = u16::MAX as usize + 1;
    match p {
        Some(n) => {
            if *anon_count > 0 {
                return Err("cannot mix ? and $n placeholders in one statement (their numberings \
                     would alias); use one style"
                    .into());
            }
            *saw_numbered = true;
            let slot = (n - 1) as usize;
            if slot >= MAX_SLOTS {
                return Err(format!("parameter ${n} exceeds the maximum of ${MAX_SLOTS}"));
            }
            Ok(slot)
        }
        None => {
            if *saw_numbered {
                return Err("cannot mix ? and $n placeholders in one statement (their numberings \
                     would alias); use one style"
                    .into());
            }
            let slot = *anon_count;
            if slot >= MAX_SLOTS {
                return Err(format!("statement exceeds the maximum of {MAX_SLOTS} parameters"));
            }
            *anon_count += 1;
            Ok(slot)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_q1() {
        let stmt = parse(
            "SELECT c_nation, s_nation, d_year, sum(lo_revenue) as revenue \
             FROM customer, lineorder, supplier, date \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_orderdate = d_datekey AND c_region = 'ASIA' \
               AND s_region = 'ASIA' AND d_year >= 1992 AND d_year <= 1997 \
             GROUP BY c_nation, s_nation, d_year \
             ORDER BY d_year asc, revenue desc;",
        )
        .unwrap();
        assert_eq!(stmt.items.len(), 4);
        assert_eq!(stmt.tables, vec!["customer", "lineorder", "supplier", "date"]);
        let conds = stmt.where_clause.unwrap().conjuncts();
        assert_eq!(conds.len(), 7);
        assert_eq!(conds.iter().filter(|c| matches!(c, Cond::JoinEq(..))).count(), 3);
        assert_eq!(stmt.group_by.len(), 3);
        assert_eq!(stmt.order_by.len(), 2);
        assert!(!stmt.order_by[0].desc);
        assert!(stmt.order_by[1].desc);
    }

    #[test]
    fn parses_count_star_and_limit() {
        let stmt = parse("SELECT count(*) FROM lineorder LIMIT 10").unwrap();
        assert_eq!(
            stmt.items,
            vec![SelectItem::Agg { func: "count".into(), arg: None, alias: None }]
        );
        assert_eq!(stmt.limit, Some(10));
    }

    #[test]
    fn parses_measure_arithmetic() {
        let stmt =
            parse("SELECT sum(l_extendedprice * (1 - l_discount)) AS rev FROM lineitem").unwrap();
        let SelectItem::Agg { func, arg, alias } = &stmt.items[0] else { panic!() };
        assert_eq!(func, "sum");
        assert_eq!(alias.as_deref(), Some("rev"));
        assert!(matches!(arg, Some(Arith::Mul(..))));
    }

    #[test]
    fn parses_between_in_or() {
        let stmt = parse(
            "SELECT count(*) FROM t WHERE a BETWEEN 1 AND 3 \
             AND b IN ('x', 'y') AND (c = 1 OR c = 2) AND NOT d = 5",
        )
        .unwrap();
        let conds = stmt.where_clause.unwrap().conjuncts();
        assert_eq!(conds.len(), 4);
        assert!(matches!(conds[0], Cond::Between { .. }));
        assert!(matches!(conds[1], Cond::InList { .. }));
        assert!(matches!(conds[2], Cond::Or(_)));
        assert!(matches!(conds[3], Cond::Not(_)));
    }

    #[test]
    fn anonymous_placeholders_number_sequentially() {
        let stmt =
            parse("SELECT count(*) FROM t WHERE a = ? AND b BETWEEN ? AND ? AND c IN (?, ?)")
                .unwrap();
        assert_eq!(stmt.param_count(), 5);
        let conds = stmt.where_clause.unwrap().conjuncts();
        assert_eq!(
            conds[1],
            Cond::Between {
                col: ColName { table: None, column: "b".into() },
                lo: Scalar::Param(1),
                hi: Scalar::Param(2),
            }
        );
    }

    #[test]
    fn numbered_placeholders_may_repeat() {
        let stmt = parse("SELECT count(*) FROM t WHERE a >= $1 AND b <= $1 AND c = $2").unwrap();
        assert_eq!(stmt.param_count(), 2);
        let conds = stmt.where_clause.unwrap().conjuncts();
        assert!(matches!(&conds[0], Cond::Cmp { rhs: Scalar::Param(0), .. }));
        assert!(matches!(&conds[1], Cond::Cmp { rhs: Scalar::Param(0), .. }));
        assert!(matches!(&conds[2], Cond::Cmp { rhs: Scalar::Param(1), .. }));
    }

    #[test]
    fn placeholders_rejected_in_measures_and_limit() {
        assert!(parse("SELECT sum(x * ?) FROM t").is_err());
        assert!(parse("SELECT count(*) FROM t LIMIT ?").is_err());
    }

    #[test]
    fn qualified_columns() {
        let stmt = parse("SELECT t.a FROM t WHERE t.b = 1").unwrap();
        let SelectItem::Col { col, .. } = &stmt.items[0] else { panic!() };
        assert_eq!(col.table.as_deref(), Some("t"));
    }

    #[test]
    fn negative_literals() {
        let stmt = parse("SELECT count(*) FROM t WHERE a >= -5 AND b BETWEEN -2.5 AND 0").unwrap();
        let conds = stmt.where_clause.unwrap().conjuncts();
        assert_eq!(
            conds[0],
            Cond::Cmp {
                col: ColName { table: None, column: "a".into() },
                op: CmpOp::Ge,
                rhs: Scalar::Int(-5)
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t extra garbage here").is_err());
        assert!(parse("SELECT a, FROM t").is_err());
        assert!(parse("SELECT count(*) FROM t WHERE a < b").is_err());
    }

    #[test]
    fn errors_carry_spans() {
        let src = "SELECT count(*) FROM t WHERE a = ";
        let e = parse(src).unwrap_err();
        assert!(e.span.is_some(), "{e:?}");
        let src = "SELEKT count(*) FROM t";
        let e = parse(src).unwrap_err();
        let (start, end) = e.span.unwrap();
        assert_eq!(&src[start..end], "SELEKT");
    }

    #[test]
    fn bare_alias() {
        let stmt = parse("SELECT sum(x) total FROM t").unwrap();
        let SelectItem::Agg { alias, .. } = &stmt.items[0] else { panic!() };
        assert_eq!(alias.as_deref(), Some("total"));
    }
}
