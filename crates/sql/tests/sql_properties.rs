//! Property-based tests for the SQL front-end: lexer round-trips and
//! parser robustness (no panics on arbitrary input, structural round-trips
//! on generated well-formed queries).

use proptest::prelude::*;

use astore_sql::lexer::{lex, Token};
use astore_sql::parser::parse;

proptest! {
    /// Rendering a token stream and re-lexing it yields the same stream
    /// (tokens are context-free).
    #[test]
    fn lexer_roundtrip(tokens in prop::collection::vec(token_strategy(), 0..40)) {
        let text: String =
            tokens.iter().map(|t| format!("{t} ")).collect();
        let relexed = lex(&text).expect("rendered tokens must lex");
        prop_assert_eq!(relexed, tokens);
    }

    /// The lexer never panics on arbitrary ASCII input.
    #[test]
    fn lexer_never_panics(input in "[ -~]{0,200}") {
        let _ = lex(&input);
    }

    /// The parser never panics on arbitrary token-ish input.
    #[test]
    fn parser_never_panics(input in "[a-zA-Z0-9_'(),.*<>=! ]{0,200}") {
        let _ = parse(&input);
    }

    /// Generated well-formed SPJGA queries always parse, and the parse
    /// captures the right clause counts.
    #[test]
    fn wellformed_queries_parse(
        n_aggs in 1..4usize,
        n_tables in 1..4usize,
        n_preds in 0..4usize,
        n_groups in 0..3usize,
        limit in prop::option::of(0..1000usize),
    ) {
        let aggs: Vec<String> = (0..n_aggs)
            .map(|i| format!("sum(m{i}) AS a{i}"))
            .collect();
        let tables: Vec<String> = (0..n_tables).map(|i| format!("t{i}")).collect();
        let preds: Vec<String> = (0..n_preds)
            .map(|i| format!("c{i} >= {i}"))
            .collect();
        let groups: Vec<String> = (0..n_groups).map(|i| format!("g{i}")).collect();

        let mut sql = format!(
            "SELECT {}{}{} FROM {}",
            groups.join(", "),
            if groups.is_empty() { "" } else { ", " },
            aggs.join(", "),
            tables.join(", "),
        );
        if !preds.is_empty() {
            sql.push_str(&format!(" WHERE {}", preds.join(" AND ")));
        }
        if !groups.is_empty() {
            sql.push_str(&format!(" GROUP BY {}", groups.join(", ")));
        }
        if let Some(n) = limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }

        let stmt = parse(&sql).expect("well-formed query must parse");
        prop_assert_eq!(stmt.items.len(), n_aggs + n_groups);
        prop_assert_eq!(stmt.tables.len(), n_tables);
        prop_assert_eq!(stmt.group_by.len(), n_groups);
        prop_assert_eq!(stmt.limit, limit);
        if n_preds == 0 {
            prop_assert!(stmt.where_clause.is_none());
        } else {
            prop_assert_eq!(stmt.where_clause.unwrap().conjuncts().len(), n_preds);
        }
    }

    /// String literals survive the lexer including escaped quotes.
    #[test]
    fn string_literal_roundtrip(content in "[a-zA-Z '.#-]{0,30}") {
        let escaped = content.replace('\'', "''");
        let toks = lex(&format!("'{escaped}'")).expect("quoted literal lexes");
        prop_assert_eq!(toks, vec![Token::Str(content)]);
    }
}

/// Tokens whose display form re-lexes unambiguously when space-separated.
fn token_strategy() -> impl Strategy<Value = Token> {
    prop_oneof![
        "[a-zA-Z_][a-zA-Z0-9_]{0,10}".prop_map(Token::Ident),
        (0..1_000_000i64).prop_map(Token::Int),
        "[a-z ]{0,10}".prop_map(Token::Str),
        Just(Token::LParen),
        Just(Token::RParen),
        Just(Token::Comma),
        Just(Token::Star),
        Just(Token::Plus),
        Just(Token::Eq),
        Just(Token::Ne),
        Just(Token::Le),
        Just(Token::Ge),
        Just(Token::Semi),
    ]
}
