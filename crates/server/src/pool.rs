//! A bounded worker-thread pool with admission control.
//!
//! Jobs enter through a fixed-capacity queue ([`std::sync::mpsc::sync_channel`]);
//! when the queue is full, [`WorkerPool::try_execute`] fails *immediately*
//! and hands the job back, letting the caller reject the request with a
//! typed error instead of building an unbounded backlog — the server's
//! overload behaviour is "shed, don't stall". Worker panics are contained:
//! the job is abandoned but the worker survives to serve the next one.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads fed by a bounded queue.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads behind a queue of `queue_depth` slots.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = sync_channel::<Job>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("astore-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool { tx: Some(tx), handles }
    }

    /// Submits a job. Fails fast with the job returned when the queue is
    /// full (admission control) or the pool is shutting down.
    pub fn try_execute(&self, job: Job) -> Result<(), RejectedJob> {
        let tx = self.tx.as_ref().expect("pool already shut down");
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) => {
                Err(RejectedJob { job, reason: RejectReason::QueueFull })
            }
            Err(TrySendError::Disconnected(job)) => {
                Err(RejectedJob { job, reason: RejectReason::ShuttingDown })
            }
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the channel; workers drain the queue and exit.
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while dequeuing, never while running the job.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => {
                // A panicking query must not take the worker down with it.
                let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => return, // channel closed: shutdown
        }
    }
}

/// A job the pool refused to accept.
pub struct RejectedJob {
    /// The job, returned unexecuted.
    pub job: Job,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// Why a job was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission queue is at capacity.
    QueueFull,
    /// The pool is shutting down.
    ShuttingDown,
}

impl std::fmt::Debug for RejectedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RejectedJob").field("reason", &self.reason).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn executes_jobs_on_workers() {
        let pool = WorkerPool::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = channel();
        for _ in 0..16 {
            let counter = counter.clone();
            let done = done_tx.clone();
            pool.try_execute(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = done.send(());
            }))
            .unwrap();
        }
        for _ in 0..16 {
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn admission_control_rejects_when_full() {
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = channel::<()>();
        // Occupy the single worker…
        pool.try_execute(Box::new(move || {
            let _ = block_rx.recv();
        }))
        .unwrap();
        // …then fill the single queue slot. One of the next submissions
        // must be rejected with QueueFull.
        std::thread::sleep(Duration::from_millis(50));
        let r1 = pool.try_execute(Box::new(|| {}));
        let r2 = pool.try_execute(Box::new(|| {}));
        assert!(
            matches!(&r1, Err(r) if r.reason == RejectReason::QueueFull)
                || matches!(&r2, Err(r) if r.reason == RejectReason::QueueFull),
            "expected a QueueFull rejection"
        );
        block_tx.send(()).unwrap();
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = WorkerPool::new(1, 4);
        pool.try_execute(Box::new(|| panic!("query exploded"))).unwrap();
        let (done_tx, done_rx) = channel();
        pool.try_execute(Box::new(move || {
            let _ = done_tx.send(());
        }))
        .unwrap();
        done_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("worker survived the panic and ran the next job");
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 32);
            for _ in 0..20 {
                let counter = counter.clone();
                pool.try_execute(Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }))
                .unwrap();
            }
        } // Drop joins workers after the queue drains.
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }
}
