//! The reactor-side protocol front-end: an [`astore_net::Service`] that
//! turns complete frames into classified jobs on the [`PriorityPool`].
//!
//! The reactor thread does exactly three cheap things per frame — decode +
//! trim, parse the JSON once, classify — then hands the *parsed* request
//! to an executor worker. The worker replays the same dispatch the
//! thread-per-connection model uses ([`Engine::handle_request`]), so both
//! io models produce byte-identical frames for the same request stream.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex};

use astore_net::{Done, Service};

use crate::engine::{error_frame, Engine, ErrorCode};
use crate::json::Json;
use crate::sched::{Priority, PriorityPool};
use crate::session::StatementRegistry;

/// Serializes a response frame exactly like the thread model's
/// `writeln!(w, "{frame}")` — Display form plus a trailing newline.
fn frame_bytes(frame: &Json) -> Vec<u8> {
    let mut bytes = frame.to_string().into_bytes();
    bytes.push(b'\n');
    bytes
}

/// Decides which executor queue a parsed request joins.
///
/// - metadata: `cmd` / `prepare` / `close` frames and malformed requests —
///   cheap protocol work that should never sit behind a scan;
/// - interactive: writes and `rowid`-keyed point lookups — short
///   statements a user is waiting on;
/// - scan: every other query.
///
/// For `execute` frames the session registry says whether the prepared
/// statement is a write; its canonical template text drives the
/// point-lookup heuristic, same as text-mode SQL.
fn classify(req: &Json, registry: &Mutex<StatementRegistry>) -> Priority {
    if let Some(sql) = req.get("sql").and_then(Json::as_str) {
        return classify_sql(sql);
    }
    if let Some(ex) = req.get("execute") {
        // Uncontended by construction: at most one frame of a connection
        // is in flight, and jobs release the registry before completing.
        let registry = registry.lock().unwrap_or_else(|p| p.into_inner());
        return match ex
            .get("id")
            .and_then(Json::as_i64)
            .filter(|id| *id >= 0)
            .and_then(|id| registry.get(id as u64))
        {
            Some(stmt) if !stmt.prepared.is_select() => Priority::Interactive,
            Some(stmt) if is_point_lookup(&stmt.key) => Priority::Interactive,
            Some(_) => Priority::Scan,
            None => Priority::Metadata, // unknown id: a fast typed error
        };
    }
    // prepare / close / cmd / unrecognized: protocol housekeeping.
    Priority::Metadata
}

fn classify_sql(sql: &str) -> Priority {
    let keyword = sql.split_whitespace().next().unwrap_or("");
    // Session knobs (`SET engine = ...`) touch no data — answer them ahead
    // of any queued scan so a pin takes effect on the very next statement.
    if keyword.eq_ignore_ascii_case("set") {
        return Priority::Metadata;
    }
    if keyword.eq_ignore_ascii_case("insert")
        || keyword.eq_ignore_ascii_case("update")
        || keyword.eq_ignore_ascii_case("delete")
    {
        return Priority::Interactive;
    }
    if is_point_lookup(sql) {
        Priority::Interactive
    } else {
        Priority::Scan
    }
}

/// A statement keyed on `rowid` touches one row, not a segment scan.
fn is_point_lookup(sql: &str) -> bool {
    sql.as_bytes().windows(5).any(|w| w.eq_ignore_ascii_case(b"rowid"))
}

/// The [`Service`] wiring the reactor to the engine and executor pool.
pub struct EngineService {
    engine: Arc<Engine>,
    pool: Arc<PriorityPool>,
    max_connections: usize,
}

impl EngineService {
    /// A front-end over `engine`, executing on `pool`, quoting
    /// `max_connections` in rejection frames.
    pub fn new(engine: Arc<Engine>, pool: Arc<PriorityPool>, max_connections: usize) -> Self {
        EngineService { engine, pool, max_connections }
    }
}

impl Service for EngineService {
    type Session = StatementRegistry;

    fn open(&self) -> StatementRegistry {
        self.engine.stats().active_connections.fetch_add(1, Relaxed);
        StatementRegistry::default()
    }

    fn closed(&self, _session: &Arc<Mutex<StatementRegistry>>) {
        self.engine.stats().active_connections.fetch_sub(1, Relaxed);
    }

    fn dispatch(&self, session: &Arc<Mutex<StatementRegistry>>, frame: Vec<u8>, done: Done) {
        // Mirror the thread model's framing byte-for-byte: lossy decode,
        // trim, silently skip whitespace-only frames.
        let line = String::from_utf8_lossy(&frame);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            done.send(Vec::new());
            return;
        }
        let req = match crate::json::parse(trimmed) {
            Ok(req) => req,
            Err(e) => {
                self.engine.stats().errors.fetch_add(1, Relaxed);
                done.send(frame_bytes(&error_frame(ErrorCode::BadRequest, e.to_string())));
                return;
            }
        };
        let priority = classify(&req, session);
        if !self.pool.accepting(priority) {
            self.engine.stats().rejected.fetch_add(1, Relaxed);
            let busy = error_frame(
                ErrorCode::ServerBusy,
                format!("admission queue full ({} workers busy)", self.pool.workers()),
            );
            done.send(frame_bytes(&busy));
            return;
        }
        let engine = Arc::clone(&self.engine);
        let session = Arc::clone(session);
        self.pool.submit(
            priority,
            Box::new(move |wait_us| {
                engine.stats().queue_wait[priority as usize].record(wait_us);
                let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut registry = session.lock().unwrap_or_else(|p| p.into_inner());
                    engine.handle_request(&req, &mut registry)
                    // registry unlocks here — before `done` fires, so the
                    // reactor can classify this connection's next frame
                    // without contending.
                }))
                .unwrap_or_else(|_| {
                    error_frame(ErrorCode::InternalError, "statement execution panicked")
                });
                done.send(frame_bytes(&out));
            }),
        );
    }

    fn reject_frame(&self) -> Vec<u8> {
        self.engine.stats().conn_rejected.fetch_add(1, Relaxed);
        frame_bytes(&error_frame(
            ErrorCode::TooManyConnections,
            format!("connection limit ({}) reached", self.max_connections),
        ))
    }

    fn oversize_frame(&self) -> Vec<u8> {
        frame_bytes(&error_frame(ErrorCode::BadRequest, "request exceeds 1 MiB"))
    }

    fn on_accept(&self) {
        self.engine.stats().accepts_total.fetch_add(1, Relaxed);
    }

    fn on_backpressure(&self) {
        self.engine.stats().reads_blocked_on_backpressure.fetch_add(1, Relaxed);
    }

    fn on_pipeline_depth(&self, depth: usize) {
        self.engine.stats().pipeline_depth.record(depth as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_classification() {
        assert_eq!(classify_sql("SELECT sum(v) FROM t GROUP BY k"), Priority::Scan);
        assert_eq!(classify_sql("  select * from t"), Priority::Scan);
        assert_eq!(classify_sql("INSERT INTO t VALUES (1)"), Priority::Interactive);
        assert_eq!(classify_sql("update t SET v = 2 WHERE rowid = 3"), Priority::Interactive);
        assert_eq!(classify_sql("DELETE FROM t WHERE rowid = 3"), Priority::Interactive);
        assert_eq!(classify_sql("SELECT v FROM t WHERE rowid = 17"), Priority::Interactive);
        assert_eq!(classify_sql("SELECT v FROM t WHERE ROWID = 17"), Priority::Interactive);
        assert_eq!(classify_sql("SET engine = join"), Priority::Metadata);
        assert_eq!(classify_sql("  set engine=auto;"), Priority::Metadata);
    }

    #[test]
    fn frame_classification() {
        let registry = Mutex::new(StatementRegistry::default());
        let cmd = Json::obj([("cmd", Json::Str("stats".into()))]);
        assert_eq!(classify(&cmd, &registry), Priority::Metadata);
        let prepare = Json::obj([("prepare", Json::Str("SELECT count(*) FROM t".into()))]);
        assert_eq!(classify(&prepare, &registry), Priority::Metadata);
        let close = Json::obj([("close", Json::Int(1))]);
        assert_eq!(classify(&close, &registry), Priority::Metadata);
        let scan = Json::obj([("sql", Json::Str("SELECT sum(v) FROM t".into()))]);
        assert_eq!(classify(&scan, &registry), Priority::Scan);
        // Executing an id that was never prepared is a fast typed error.
        let exec = Json::obj([(
            "execute",
            Json::obj([("id", Json::Int(42)), ("params", Json::Array(vec![]))]),
        )]);
        assert_eq!(classify(&exec, &registry), Priority::Metadata);
        let garbage = Json::obj([("frobnicate", Json::Int(1))]);
        assert_eq!(classify(&garbage, &registry), Priority::Metadata);
    }
}
