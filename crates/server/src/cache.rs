//! A shared prepared-statement cache.
//!
//! SELECT statements are planned once into a parameter-aware
//! [`Prepared`] template and reused by
//! every session: plans bind table/column *names*, which are resolved
//! against the snapshot at execution time, so a cached plan stays valid
//! across row-level updates.
//!
//! The key is the template's canonical text
//! ([`Prepared::sql`](astore_sql::prepared::Prepared::sql)): identifiers
//! case-folded, whitespace/comments gone, and predicate literals replaced
//! by parameter slots. SSB Q1.1 asked with different date literals — or
//! with different formatting — is therefore **one** cache entry, bound
//! per-request instead of re-planned per-literal.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use astore_sql::prepared::Prepared;

/// Default maximum number of cached plans.
pub const DEFAULT_CAPACITY: usize = 1024;

/// A bounded, thread-safe map from canonical template text to prepared
/// statements, with hit/miss counters. Eviction is FIFO — plans are tiny
/// and reparsing is cheap, so recency tracking isn't worth a hot-path
/// write.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Arc<Prepared>>,
    fifo: VecDeque<String>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Looks up a template by canonical text, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<Prepared>> {
        let found = self.inner.lock().expect("plan cache poisoned").map.get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a freshly prepared template, evicting the oldest entry if
    /// full.
    pub fn insert(&self, key: String, plan: Arc<Prepared>) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        if inner.map.insert(key.clone(), plan).is_none() {
            inner.fifo.push_back(key);
            if inner.fifo.len() > self.capacity {
                if let Some(old) = inner.fifo.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").map.len()
    }

    /// Returns `true` if the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::catalog::Database;
    use astore_storage::table::{ColumnDef, Schema, Table};
    use astore_storage::types::{DataType, Value};

    fn prepared(sql: &str) -> Arc<Prepared> {
        let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        t.append_row(&[Value::Int(1)]);
        let mut db = Database::new();
        db.add_table(t);
        Arc::new(astore_sql::prepare(sql, &db).unwrap())
    }

    #[test]
    fn hit_and_miss_counting() {
        let c = PlanCache::with_capacity(8);
        assert!(c.get("select 1").is_none());
        c.insert("select 1".into(), prepared("SELECT count(*) FROM t"));
        assert!(c.get("select 1").is_some());
        assert!(c.get("select 1").is_some());
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let c = PlanCache::with_capacity(2);
        let p = prepared("SELECT count(*) FROM t");
        c.insert("a".into(), Arc::clone(&p));
        c.insert("b".into(), Arc::clone(&p));
        c.insert("c".into(), Arc::clone(&p));
        assert_eq!(c.len(), 2);
        assert!(c.get("a").is_none(), "oldest entry evicted");
        assert!(c.get("b").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn reinsert_does_not_duplicate_fifo_entries() {
        let c = PlanCache::with_capacity(2);
        let p = prepared("SELECT count(*) FROM t");
        for _ in 0..10 {
            c.insert("same".into(), Arc::clone(&p));
        }
        c.insert("other".into(), Arc::clone(&p));
        assert_eq!(c.len(), 2);
        assert!(c.get("same").is_some());
        assert!(c.get("other").is_some());
    }
}
