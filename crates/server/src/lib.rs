//! # astore-server
//!
//! A concurrent TCP query-serving subsystem over the A-Store engine
//! (conf_icde_ZhangZZZSW16): SPJGA queries over star/snowflake schemas,
//! executed join-free against copy-on-write snapshots while writers
//! proceed through [`SharedDatabase::write`](astore_storage::snapshot::SharedDatabase::write).
//!
//! ## Wire protocol
//!
//! Newline-delimited JSON over TCP. One request frame per line, one
//! response frame per line, strictly in order per connection:
//!
//! ```text
//! → {"sql":"SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year"}
//! ← {"ok":true,"columns":["d_year","rev"],"rows":[[1992,…],…],"row_count":7,"cached_plan":false,"elapsed_us":184}
//! → {"sql":"INSERT INTO lineorder VALUES (…)"}
//! ← {"ok":true,"rows_affected":1,"elapsed_us":12}
//! → {"cmd":"stats"}
//! ← {"ok":true,"stats":{"queries":…,"cache_hit_rate":…,"latency_p99_us":…,…}}
//! → {"sql":"SELEKT"}
//! ← {"ok":false,"code":"parse_error","error":"parse error: …"}
//! ```
//!
//! **Protocol v2 — prepare/execute.** A statement is parsed and planned
//! once per session, then executed many times by binding parameters
//! (`?` / `$n` placeholders) — the hot path never re-parses SQL text:
//!
//! ```text
//! → {"prepare":"SELECT sum(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year = ?"}
//! ← {"ok":true,"stmt_id":1,"param_count":1,"kind":"select","columns":["rev"],"column_types":["float"]}
//! → {"execute":{"id":1,"params":[1993]}}
//! ← {"ok":true,"columns":["rev"],"rows":[[…]],"row_count":1,"cached_plan":true,"elapsed_us":97}
//! → {"close":1}
//! ← {"ok":true,"closed":true}
//! ```
//!
//! Prepared statements are per-session, capped (FIFO eviction) by the
//! [`StatementRegistry`]; the *plans* behind them live in the shared
//! [`PlanCache`], keyed by canonical statement template, which text-mode
//! queries share via auto-parameterization — `d_year = 1993` and
//! `d_year = 1997` are one plan.
//!
//! **Observability.** `EXPLAIN ANALYZE <select>` runs the statement with a
//! span recorder attached and returns the usual result frame plus an
//! `analyze` member (the executed plan annotated with per-phase times,
//! morsel spans and per-segment prune decisions). `{"cmd":"metrics"}`
//! returns a Prometheus text-format scrape body — all server counters,
//! the global latency histogram, and one labeled histogram per canonical
//! statement template. `{"cmd":"slowlog"}` returns the bounded ring of
//! statements slower than the `--slow-ms` threshold, newest first:
//!
//! ```text
//! → {"sql":"EXPLAIN ANALYZE SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year"}
//! ← {"ok":true,"rows":[…],"analyze":["root: lineorder  executor: serial","phases: leaf=…us scan=…us agg=…us total=…us",…],…}
//! → {"cmd":"metrics"}
//! ← {"ok":true,"metrics":"# HELP astore_server_queries_total …"}
//! → {"cmd":"slowlog"}
//! ← {"ok":true,"slowlog":{"threshold_ms":100,"entries":[{"template":…,"elapsed_us":…,"ago_s":…}]}}
//! ```
//!
//! Error codes: `bad_request`, `parse_error`, `plan_error`, `exec_error`,
//! `write_error`, `unknown_statement` (execute of an unprepared/evicted
//! id), `param_error` (wrong parameter count or kind), `server_busy`
//! (admission control shed the request), `too_many_connections`,
//! `internal_error`.
//!
//! ## Architecture
//!
//! Connection handling comes in two io models (see [`server::IoModel`]).
//! The default is the event-driven reactor: one epoll/kqueue thread owns
//! every socket (nonblocking accepts, incremental framing, pipelining,
//! write-buffer backpressure) and hands parsed requests to the
//! strict-priority executor pool — metadata and point lookups jump ahead
//! of long scans. `--io-model threads` keeps the previous
//! thread-per-connection path as a differential oracle.
//!
//! ```text
//! TcpListener ── reactor (epoll/kqueue, default) ── priority executor pool
//!           └─── or: accept loop ── per-connection I/O threads
//!                                     │ one statement at a time
//!                                     ▼
//!                     bounded admission queue (shed, don't stall)
//!                                     │
//!                                     ▼
//!        Engine: parse → PlanCache (canonical template → Arc<Prepared>)
//!                  │ SELECT: execute against SharedDatabase::snapshot(),
//!                  │   fan-out threads granted by the shared CoreBudget
//!                  │   (big scans go morsel-parallel, small stay serial)
//!                  │ INSERT/UPDATE/DELETE: SharedDatabase::write (atomic)
//!                  ▼
//!        ServerStats: counters + streaming latency histogram (p50/p99)
//! ```
//!
//! Intra-query parallelism (`--engine-threads`) and the worker pool share
//! one [`CoreBudget`] sized to the machine's cores: each executing
//! statement holds a baseline permit, and a query fans out only over the
//! cores nobody else is using — the two concurrency layers compose instead
//! of multiplying.
//!
//! Binaries: `astore-serve` (the server) and `loadgen` (a load-generator
//! client that prints a JSON throughput/latency summary).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod cache;
pub mod client;
pub mod engine;
pub mod front;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod sched;
pub mod server;
pub mod session;
pub mod stats;

pub use budget::CoreBudget;
pub use cache::PlanCache;
pub use client::{Client, ClientError};
pub use engine::{Durability, Engine, ErrorCode};
pub use front::EngineService;
pub use metrics::{SlowLog, TemplateStats};
pub use router::{DenormCache, EngineChoice, Router, RouterConfig};
pub use sched::{Priority, PriorityPool};
pub use server::{start, IoModel, ServerConfig, ServerHandle};
pub use session::StatementRegistry;
pub use stats::ServerStats;
