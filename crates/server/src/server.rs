//! The TCP serving layer, in two interchangeable io models:
//!
//! **Reactor (default).** One event-loop thread owns every socket via the
//! [`astore_net`] epoll/kqueue reactor: nonblocking accepts, incremental
//! frame parsing, request pipelining, and write-buffer backpressure. Each
//! complete frame is parsed and classified on the reactor thread, then
//! executed on the strict-priority [`PriorityPool`] — interactive point
//! lookups and metadata commands jump ahead of long scans. Idle
//! connections cost no threads, so the model holds 10K+ of them.
//!
//! **Threads (`IoModel::Threads`).** The previous model — one lightweight
//! I/O thread per connection feeding the bounded [`WorkerPool`] — kept for
//! one release as the differential oracle: both models answer the same
//! request stream with byte-identical frames.
//!
//! Either way, admission control is a bounded queue: when it is full the
//! server answers immediately with a `server_busy` error frame instead of
//! stalling — it sheds load, it never builds an unbounded backlog.

use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use astore_net::{Reactor, ReactorConfig, ReactorStop};

use crate::engine::{error_frame, Engine, ErrorCode};
use crate::front::EngineService;
use crate::json::Json;
use crate::pool::{RejectReason, WorkerPool};
use crate::sched::PriorityPool;
use crate::session::StatementRegistry;
use std::sync::Mutex;

/// Maximum accepted request-line length (1 MiB); longer lines are answered
/// with `bad_request` and the connection is closed.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Which connection-handling model serves the listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// Event-driven: an epoll/kqueue reactor owns all sockets and a
    /// priority executor pool runs the statements (default).
    Reactor,
    /// One I/O thread per connection over the bounded worker pool — the
    /// differential oracle for the reactor.
    Threads,
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reactor" => Ok(IoModel::Reactor),
            "threads" => Ok(IoModel::Threads),
            other => Err(format!("unknown io model {other:?} (try reactor or threads)")),
        }
    }
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:3939` (`…:0` picks a free port).
    pub addr: String,
    /// Worker threads executing statements.
    pub workers: usize,
    /// Bounded admission-queue depth in statements (per priority class
    /// under the reactor model).
    pub queue_depth: usize,
    /// Maximum concurrently open connections.
    pub max_connections: usize,
    /// Connection-handling model.
    pub io_model: IoModel,
    /// Reactor only: write backlog (bytes) at which reading from a
    /// connection pauses.
    pub high_watermark: usize,
    /// Reactor only: write backlog at which a paused connection resumes.
    pub low_watermark: usize,
    /// Reactor only: close a connection whose *partial* frame has stalled
    /// this long (slow-loris defence; 0 disables). Fully idle connections
    /// are never reaped.
    pub idle_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        ServerConfig {
            addr: "127.0.0.1:3939".into(),
            workers,
            queue_depth: workers * 4,
            max_connections: 256,
            io_model: IoModel::Reactor,
            high_watermark: 256 * 1024,
            low_watermark: 64 * 1024,
            idle_timeout_ms: 30_000,
        }
    }
}

/// A handle to a running server. Dropping it (or calling
/// [`ServerHandle::shutdown`]) stops the serving threads and drains the
/// executor pool.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// The accept-loop thread (threads model) or the reactor thread.
    accept: Option<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
    engine: Arc<Engine>,
    reactor_stop: Option<ReactorStop>,
    /// Held so the executor pool outlives the reactor; the last Arc drop
    /// (after the reactor joined) drains and joins the workers.
    exec_pool: Option<Arc<PriorityPool>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine serving this listener.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Blocks until the accept loop exits (i.e. until another thread calls
    /// [`ServerHandle::shutdown`] via a clone-free path — typically never,
    /// for a foreground server process).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting, unblocks the accept loop, and joins it. Connection
    /// threads notice the flag at their next read timeout and exit.
    pub fn shutdown(mut self) {
        self.stop_accept();
    }

    fn stop_accept(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match self.reactor_stop.take() {
            // Reactor model: wake the event loop; it closes every
            // connection (running their session teardown) and exits.
            Some(stop) => stop.stop(),
            // Threads model: unblock the blocking accept with a throwaway
            // connection.
            None => {
                let _ = TcpStream::connect(self.addr);
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // With the reactor joined, this is the last pool reference: the
        // drop drains queued statements and joins the executor workers.
        self.exec_pool.take();
        if let Some(h) = self.compactor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || self.compactor.is_some() {
            self.stop_accept();
        }
    }
}

/// Binds the listener and starts serving `engine` in background threads
/// using the configured [`IoModel`].
pub fn start(engine: Arc<Engine>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (accept, reactor_stop, exec_pool) = match config.io_model {
        IoModel::Reactor => {
            // Share the engine's core budget with the executor: when every
            // core is granted to running statements, the pool briefly defers
            // scan-class dispatch instead of piling more scans on.
            let pool = Arc::new(PriorityPool::with_budget(
                config.workers,
                config.queue_depth,
                engine.budget_handle(),
            ));
            let service =
                EngineService::new(Arc::clone(&engine), Arc::clone(&pool), config.max_connections);
            let reactor_config = ReactorConfig {
                max_connections: config.max_connections,
                max_frame_bytes: MAX_LINE_BYTES,
                high_watermark: config.high_watermark,
                low_watermark: config.low_watermark.min(config.high_watermark),
                idle_timeout: (config.idle_timeout_ms > 0)
                    .then(|| Duration::from_millis(config.idle_timeout_ms)),
            };
            let reactor = Reactor::new(listener, service, reactor_config)?;
            let reactor_stop = reactor.stop_handle();
            let accept = std::thread::Builder::new()
                .name("astore-reactor".into())
                .spawn(move || {
                    let _ = reactor.run();
                })
                .expect("failed to spawn reactor thread");
            (accept, Some(reactor_stop), Some(pool))
        }
        IoModel::Threads => {
            let pool = Arc::new(WorkerPool::new(config.workers, config.queue_depth));
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let accept = std::thread::Builder::new()
                .name("astore-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &engine, &pool, &stop, config.max_connections)
                })
                .expect("failed to spawn accept thread");
            (accept, None, None)
        }
    };
    // Background compaction: fold write-throughs on sealed segments back
    // into their compressed form so a write-heavy phase does not slowly
    // decay the scan path to flat evaluation. Best-effort — a spawn
    // failure just means segments re-encode at the next checkpoint.
    let compactor = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("astore-compact".into())
            .spawn(move || compactor_loop(&engine, &stop))
            .ok()
    };
    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
        compactor,
        engine,
        reactor_stop,
        exec_pool,
    })
}

/// Polls for stale or short segment encodings and re-seals them. Backs off
/// to a longer sleep when a pass finds nothing; every sleep is short enough
/// that shutdown is prompt.
fn compactor_loop(engine: &Arc<Engine>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        let installed = engine.run_compaction_pass();
        let nap =
            if installed > 0 { Duration::from_millis(10) } else { Duration::from_millis(100) };
        std::thread::sleep(nap);
    }
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    pool: &Arc<WorkerPool>,
    stop: &Arc<AtomicBool>,
    max_connections: usize,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            // Transient accept errors (EMFILE, ECONNABORTED) would otherwise
            // busy-spin the loop at 100% CPU; back off briefly.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let stats = engine.stats();
        stats.accepts_total.fetch_add(1, Ordering::Relaxed);
        if stats.active_connections.load(Ordering::Relaxed) >= max_connections {
            stats.conn_rejected.fetch_add(1, Ordering::Relaxed);
            let mut w = BufWriter::new(&stream);
            let frame = error_frame(
                ErrorCode::TooManyConnections,
                format!("connection limit ({max_connections}) reached"),
            );
            let _ = writeln!(w, "{frame}");
            let _ = w.flush();
            continue; // stream drops → closed
        }
        stats.active_connections.fetch_add(1, Ordering::Relaxed);
        let conn_engine = Arc::clone(engine);
        let pool = Arc::clone(pool);
        let stop = Arc::clone(stop);
        let spawned = std::thread::Builder::new().name("astore-conn".into()).spawn(move || {
            serve_connection(stream, &conn_engine, &pool, &stop);
            conn_engine.stats().active_connections.fetch_sub(1, Ordering::Relaxed);
        });
        if spawned.is_err() {
            // Thread exhaustion: give the slot back or the counter leaks
            // and the server eventually rejects everything while idle.
            stats.active_connections.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Reads newline-delimited request frames and answers each on the same
/// stream. Statement execution happens on the worker pool; this thread only
/// parses frames and shuttles bytes.
///
/// Framing is done on raw bytes: UTF-8 is only decoded once a full frame
/// (up to `\n`) is buffered, so a read stall in the middle of a multi-byte
/// character cannot corrupt the frame, and the buffer is bounds-checked
/// *before* every read, so a client streaming a newline-free line cannot
/// grow memory past [`MAX_LINE_BYTES`].
fn serve_connection(
    mut stream: TcpStream,
    engine: &Arc<Engine>,
    pool: &WorkerPool,
    stop: &AtomicBool,
) {
    // A short read timeout doubles as the shutdown poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = BufWriter::new(write_half);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    // The connection's prepared-statement registry. Statements run on pool
    // workers one at a time per connection, so the mutex is uncontended —
    // it only carries the registry across worker threads.
    let session = Arc::new(Mutex::new(StatementRegistry::default()));
    loop {
        // Answer every complete frame currently buffered.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&frame);
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let response = execute_on_pool(engine, pool, trimmed, &session);
            if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
                return;
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            let frame = error_frame(ErrorCode::BadRequest, "request exceeds 1 MiB");
            let _ = writeln!(writer, "{frame}");
            let _ = writer.flush();
            return; // close: the rest of the oversized line is unreadable
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Runs one request on the worker pool, translating admission-control
/// rejections and worker panics into typed error frames.
fn execute_on_pool(
    engine: &Arc<Engine>,
    pool: &WorkerPool,
    request: &str,
    session: &Arc<Mutex<StatementRegistry>>,
) -> Json {
    let (tx, rx) = channel();
    let job_engine = Arc::clone(engine);
    let job_line = request.to_owned();
    let job_session = Arc::clone(session);
    let submitted = pool.try_execute(Box::new(move || {
        let mut reg = job_session.lock().unwrap_or_else(|p| p.into_inner());
        let _ = tx.send(job_engine.handle_line_session(&job_line, &mut reg));
    }));
    match submitted {
        Ok(()) => rx.recv().unwrap_or_else(|_| {
            // The worker panicked before sending (contained by the pool).
            error_frame(ErrorCode::InternalError, "statement execution panicked")
        }),
        Err(rejected) => {
            engine.stats().rejected.fetch_add(1, Ordering::Relaxed);
            let message = match rejected.reason {
                RejectReason::QueueFull => {
                    format!("admission queue full ({} workers busy)", pool.workers())
                }
                RejectReason::ShuttingDown => "server is shutting down".to_owned(),
            };
            error_frame(ErrorCode::ServerBusy, message)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use astore_storage::catalog::Database;
    use astore_storage::snapshot::SharedDatabase;
    use astore_storage::table::{ColumnDef, Schema, Table};
    use astore_storage::types::{DataType, Value};

    fn tiny_engine() -> Arc<Engine> {
        let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        for i in 0..10 {
            t.append_row(&[Value::Int(i)]);
        }
        let mut db = Database::new();
        db.add_table(t);
        Arc::new(Engine::new(SharedDatabase::new(db)))
    }

    fn start_tiny(config: ServerConfig) -> ServerHandle {
        start(tiny_engine(), ServerConfig { addr: "127.0.0.1:0".into(), ..config }).unwrap()
    }

    #[test]
    fn serves_queries_over_tcp() {
        let h = start_tiny(ServerConfig::default());
        let mut c = Client::connect(h.addr()).unwrap();
        let r = c.sql("SELECT sum(v) AS s FROM t").unwrap();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        let rows = r.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[0].as_i64(), Some(45));
        let r = c.request(&Json::obj([("cmd", Json::Str("ping".into()))])).unwrap();
        assert_eq!(r.get("pong").unwrap().as_bool(), Some(true));
        h.shutdown();
    }

    #[test]
    fn many_concurrent_connections() {
        // Queue must hold all 8 in-flight statements even on a 1-core box,
        // where the default (4 × workers) would trigger admission control.
        let h = start_tiny(ServerConfig { queue_depth: 64, ..ServerConfig::default() });
        let addr = h.addr();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for _ in 0..20 {
                        let r = c.sql("SELECT count(*) AS n FROM t").unwrap();
                        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
                    }
                });
            }
        });
        let stats = h.engine().stats();
        assert!(stats.queries.load(Ordering::Relaxed) >= 160);
        h.shutdown();
    }

    #[test]
    fn connection_limit_rejects_with_typed_frame() {
        let h = start_tiny(ServerConfig { max_connections: 1, ..ServerConfig::default() });
        let mut keep = Client::connect(h.addr()).unwrap();
        // Make sure the first connection is registered before the second.
        keep.sql("SELECT count(*) AS n FROM t").unwrap();
        let mut second = Client::connect(h.addr()).unwrap();
        let r = second.read_frame().unwrap();
        assert_eq!(r.get("code").unwrap().as_str(), Some("too_many_connections"), "{r:?}");
        drop(second);
        keep.sql("SELECT count(*) AS n FROM t").unwrap();
        h.shutdown();
    }

    #[test]
    fn bad_requests_get_error_frames_and_connection_survives() {
        let h = start_tiny(ServerConfig::default());
        let mut c = Client::connect(h.addr()).unwrap();
        let r = c.raw_line("not json").unwrap();
        assert_eq!(r.get("code").unwrap().as_str(), Some("bad_request"));
        let r = c.sql("SELECT count(*) AS n FROM t").unwrap();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        h.shutdown();
    }
}
