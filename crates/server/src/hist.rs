//! A lock-free streaming latency histogram.
//!
//! Power-of-two buckets over microseconds: bucket `i` holds samples in
//! `[2^(i-1), 2^i)` µs (bucket 0 holds `0` and `1` µs lands in bucket 1).
//! 40 buckets cover up to ~2^39 µs ≈ 6 days, far beyond any query. Each
//! record is two relaxed atomic increments and one atomic add; quantile
//! estimation walks the bucket array and interpolates inside the winning
//! bucket, giving ≤ ~50% relative error — plenty for p50/p99 monitoring.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 40;

/// A streaming histogram of microsecond latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, us: u64) {
        self.counts[Self::bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded sample.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts as `(upper_bound_us, cumulative_count)`
    /// pairs, Prometheus-style: bucket `i`'s bound is `2^i` µs and its
    /// count includes every smaller bucket. Only the finite buckets are
    /// returned — the final bucket clamps all out-of-range outliers, so
    /// including it would let its `le` bound claim samples that exceed it
    /// (skewing `histogram_quantile` tails). Outliers are covered solely
    /// by the exposition layer's `+Inf` sample, whose value is
    /// [`LatencyHistogram::count`].
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let mut cumulative = 0u64;
        self.counts
            .iter()
            .take(BUCKETS - 1)
            .enumerate()
            .map(|(i, c)| {
                cumulative += c.load(Ordering::Relaxed);
                (1u64 << i, cumulative)
            })
            .collect()
    }

    /// Approximate quantile (`q` in `[0, 1]`), linearly interpolated inside
    /// the winning bucket. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (n as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c > rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                let hi = 1u64 << i;
                // Position of the rank within this bucket; clamped so an
                // interpolated upper quantile never exceeds the true max.
                let frac = (rank - seen) as f64 / c as f64;
                return ((lo as f64 + frac * (hi - lo) as f64) as u64).min(self.max_us());
            }
            seen += c;
        }
        self.max_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(us);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_us(0.5);
        // True median is 500; log buckets allow generous but bounded error.
        assert!((256..=1024).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((512..=1024).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.max_us(), 1000);
        assert!((h.mean_us() - 500.5).abs() < 1.0);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for us in 0..1000 {
                        h.record(us);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn extreme_values_stay_out_of_finite_buckets() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_us(0.5) > 0);
        let buckets = h.buckets();
        assert_eq!(
            buckets.last().unwrap().1,
            0,
            "no finite le bound claims the clamped outlier; only +Inf (= count) covers it"
        );
    }

    #[test]
    fn buckets_are_cumulative_and_end_at_count() {
        let h = LatencyHistogram::new();
        for us in [0, 1, 2, 100, 5000] {
            h.record(us);
        }
        let buckets = h.buckets();
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        // All samples are in range, so the finite series covers them all.
        assert_eq!(buckets.last().unwrap().1, h.count());
        assert_eq!(h.sum_us(), 5103);
        // A 100µs sample is counted by every bound ≥ 128.
        let (bound, cum) = buckets.iter().find(|(b, _)| *b >= 128).unwrap();
        assert_eq!(*bound, 128);
        assert_eq!(*cum, 4, "0, 1, 2 and 100 are ≤ 128µs");
    }
}
