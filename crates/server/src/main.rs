//! `astore-serve` — serve an SSB / TPC-H dataset over the wire protocol.
//!
//! ```text
//! astore-serve --addr 127.0.0.1:3939 --dataset ssb --sf 0.01 --workers 8
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use astore_server::{start, Engine, ServerConfig};
use astore_storage::snapshot::SharedDatabase;

fn main() {
    let mut config = ServerConfig::default();
    let mut dataset = "ssb".to_owned();
    let mut sf = 0.01f64;
    let mut queue_explicit = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse_or_die(&value("--workers"), "--workers"),
            "--queue" => {
                config.queue_depth = parse_or_die(&value("--queue"), "--queue");
                queue_explicit = true;
            }
            "--max-conn" => {
                config.max_connections = parse_or_die(&value("--max-conn"), "--max-conn")
            }
            "--dataset" => dataset = value("--dataset"),
            "--sf" => sf = parse_or_die(&value("--sf"), "--sf"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
    }

    if !queue_explicit {
        // Keep the documented "4x workers" default when --workers overrides
        // the core-count default.
        config.queue_depth = config.workers * 4;
    }

    let t = Instant::now();
    let db = match dataset.as_str() {
        "ssb" => astore_datagen::ssb::generate(sf, 42),
        "tpch" => astore_datagen::tpch::generate(sf, 42),
        other => {
            eprintln!("unknown dataset {other:?} (try ssb or tpch)");
            exit(2);
        }
    };
    let rows: usize = db.table_names().iter().map(|n| db.table(n).unwrap().num_live()).sum();
    eprintln!("loaded {dataset} sf={sf} ({rows} rows) in {:.1?}", t.elapsed());

    let engine = Arc::new(Engine::new(SharedDatabase::new(db)));
    let workers = config.workers;
    let queue = config.queue_depth;
    match start(engine, config) {
        Ok(handle) => {
            eprintln!(
                "astore-serve listening on {} ({workers} workers, queue depth {queue})",
                handle.addr(),
            );
            handle.join();
        }
        Err(e) => {
            eprintln!("failed to bind: {e}");
            exit(1);
        }
    }
}

fn parse_or_die<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}");
        exit(2);
    })
}

const USAGE: &str = "\
astore-serve — A-Store query server (newline-delimited JSON over TCP)

flags:
  --addr <host:port>   listen address           (default 127.0.0.1:3939)
  --dataset <name>     ssb | tpch               (default ssb)
  --sf <f>             dataset scale factor     (default 0.01)
  --workers <n>        statement worker threads (default: cores)
  --queue <n>          admission queue depth    (default: 4x workers)
  --max-conn <n>       connection limit         (default 256)";
