//! `astore-serve` — serve an SSB / TPC-H dataset over the wire protocol.
//!
//! ```text
//! astore-serve --addr 127.0.0.1:3939 --dataset ssb --sf 0.01 --workers 8
//! astore-serve --data-dir ./data --dataset ssb --sf 0.01
//! ```
//!
//! With `--data-dir`, the server is durable and restartable: the first boot
//! generates the dataset, snapshots it into the directory and opens a WAL;
//! every later boot recovers from snapshot + WAL instead of regenerating.
//! Writes are logged before they are acknowledged; `{"cmd":"checkpoint"}`
//! (or `--checkpoint-every N`) folds the log back into the snapshot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use astore_server::{start, Durability, Engine, EngineChoice, RouterConfig, ServerConfig};
use astore_storage::snapshot::SharedDatabase;

fn main() {
    let mut config = ServerConfig::default();
    let mut dataset = "ssb".to_owned();
    let mut sf = 0.01f64;
    let mut queue_explicit = false;
    let mut data_dir: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut checkpoint_every: u64 = 4096;
    let mut engine_threads: usize = 1;
    let mut slow_ms: u64 = 0;
    let mut trace = false;
    let mut engine_pin: Option<EngineChoice> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse_or_die(&value("--workers"), "--workers"),
            "--queue" => {
                config.queue_depth = parse_or_die(&value("--queue"), "--queue");
                queue_explicit = true;
            }
            "--max-conn" => {
                config.max_connections = parse_or_die(&value("--max-conn"), "--max-conn")
            }
            "--io-model" => config.io_model = parse_or_die(&value("--io-model"), "--io-model"),
            "--idle-timeout-ms" => {
                config.idle_timeout_ms =
                    parse_or_die(&value("--idle-timeout-ms"), "--idle-timeout-ms")
            }
            "--dataset" => dataset = value("--dataset"),
            "--sf" => sf = parse_or_die(&value("--sf"), "--sf"),
            "--data-dir" => data_dir = Some(value("--data-dir")),
            "--cache-dir" => cache_dir = Some(value("--cache-dir")),
            "--checkpoint-every" => {
                checkpoint_every = parse_or_die(&value("--checkpoint-every"), "--checkpoint-every")
            }
            "--engine-threads" => {
                engine_threads = parse_or_die(&value("--engine-threads"), "--engine-threads")
            }
            "--slow-ms" => slow_ms = parse_or_die(&value("--slow-ms"), "--slow-ms"),
            "--engine" => {
                engine_pin = EngineChoice::parse(&value("--engine")).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(2);
                })
            }
            "--trace" => trace = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
    }

    if !queue_explicit {
        // Keep the documented "4x workers" default when --workers overrides
        // the core-count default.
        config.queue_depth = config.workers * 4;
    }

    let t = Instant::now();
    let (db, durability) = match &data_dir {
        Some(dir) if astore_persist::store::is_initialized(dir) => {
            // Warm boot: recover from snapshot + WAL, no regeneration.
            // --dataset/--sf are ignored here — the data dir is the truth.
            let rec = astore_persist::store::open(dir).unwrap_or_else(|e| {
                eprintln!("failed to recover from {dir}: {e}");
                exit(1);
            });
            eprintln!(
                "recovered from {dir} ({} WAL records replayed{})",
                rec.replayed,
                if rec.truncated_tail { ", torn tail truncated" } else { "" }
            );
            let rows: usize =
                rec.db.table_names().iter().map(|n| rec.db.table(n).unwrap().num_live()).sum();
            eprintln!("loaded {rows} rows from disk in {:.1?}", t.elapsed());
            (rec.db, Some(Durability::new(dir.clone(), rec.wal, checkpoint_every)))
        }
        _ => {
            let (db, cached) = generate(&dataset, sf, cache_dir.as_deref());
            let durability = data_dir.map(|dir| {
                // Cold boot: seed the data directory from the generated set.
                let wal = astore_persist::store::bootstrap(&dir, &db).unwrap_or_else(|e| {
                    eprintln!("failed to initialize {dir}: {e}");
                    exit(1);
                });
                eprintln!("initialized data dir {dir}");
                Durability::new(dir, wal, checkpoint_every)
            });
            let rows: usize =
                db.table_names().iter().map(|n| db.table(n).unwrap().num_live()).sum();
            eprintln!(
                "loaded {dataset} sf={sf} ({rows} rows{}) in {:.1?}",
                if cached { ", dataset cache hit" } else { "" },
                t.elapsed()
            );
            (db, durability)
        }
    };

    if trace {
        // Runtime toggle: arms the engine-wide timing counters (WAL
        // append/fsync, checkpoint encode) surfaced by {"cmd":"metrics"}.
        astore_obs::set_enabled(true);
    }
    let exec_opts = astore_core::exec::ExecOptions::default().threads(engine_threads.max(1));
    let mut engine = Engine::with_options(SharedDatabase::new(db), exec_opts).slow_ms(slow_ms);
    if engine_pin.is_some() {
        engine =
            engine.router_config(RouterConfig { pinned: engine_pin, ..RouterConfig::default() });
    }
    if let Some(d) = durability {
        engine = engine.durable(d);
    }
    let budget_total = engine.budget().total();
    let engine = Arc::new(engine);
    let workers = config.workers;
    let queue = config.queue_depth;
    let io_model = match config.io_model {
        astore_server::IoModel::Reactor => "reactor",
        astore_server::IoModel::Threads => "threads",
    };
    match start(engine, config) {
        Ok(handle) => {
            eprintln!(
                "astore-serve listening on {} (io model {io_model}, {workers} workers, \
                 queue depth {queue}, engine threads {engine_threads}, \
                 core budget {budget_total})",
                handle.addr(),
            );
            handle.join();
        }
        Err(e) => {
            eprintln!("failed to bind: {e}");
            exit(1);
        }
    }
}

/// Generates (or, with `--cache-dir`, loads a memoized snapshot of) the
/// named dataset. Returns the database and whether the cache served it.
fn generate(
    dataset: &str,
    sf: f64,
    cache_dir: Option<&str>,
) -> (astore_storage::catalog::Database, bool) {
    const SEED: u64 = 42;
    if let Some(dir) = cache_dir {
        return astore_datagen::cached::generate_named_cached(dir, dataset, sf, SEED)
            .unwrap_or_else(|e| {
                eprintln!("dataset cache failed: {e}");
                exit(2);
            });
    }
    let db = match dataset {
        "ssb" => astore_datagen::ssb::generate(sf, SEED),
        "tpch" => astore_datagen::tpch::generate(sf, SEED),
        other => {
            eprintln!("unknown dataset {other:?} (try ssb or tpch)");
            exit(2);
        }
    };
    (db, false)
}

fn parse_or_die<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}");
        exit(2);
    })
}

const USAGE: &str = "\
astore-serve — A-Store query server (newline-delimited JSON over TCP)

flags:
  --addr <host:port>      listen address              (default 127.0.0.1:3939)
  --dataset <name>        ssb | tpch                  (default ssb)
  --sf <f>                dataset scale factor        (default 0.01)
  --workers <n>           statement worker threads    (default: cores)
  --queue <n>             admission queue depth       (default: 4x workers)
  --max-conn <n>          connection limit            (default 256)
  --io-model <m>          reactor | threads           (default reactor)
                          reactor: one epoll/kqueue event loop owns every
                          socket; statements run on a strict-priority
                          executor pool (metadata > interactive > scan).
                          threads: one I/O thread per connection (the
                          previous model, kept as a differential oracle)
  --idle-timeout-ms <n>   reactor only: close connections whose partial
                          frame stalls for n ms (slow-loris defence;
                          default 30000, 0 = off). Idle connections with
                          no buffered bytes are never reaped
  --data-dir <dir>        durable mode: snapshot + WAL live here; first boot
                          seeds from --dataset/--sf, later boots recover
                          (--dataset/--sf are then ignored)
  --cache-dir <dir>       memoize generated datasets as snapshots keyed by
                          (dataset, sf, seed): generate once, reload after
  --checkpoint-every <n>  auto-checkpoint after n WAL records (default 4096,
                          0 = only on {\"cmd\":\"checkpoint\"})
  --engine-threads <n>    per-query fan-out ceiling (default 1 = serial).
                          Big scans split into morsels across up to n worker
                          threads, granted from a global core budget shared
                          with the statement worker pool, so intra-query and
                          inter-query parallelism never oversubscribe cores
  --slow-ms <n>           capture statements slower than n ms in the
                          {\"cmd\":\"slowlog\"} ring buffer (default 0 = off)
  --engine <e>            air | join | denorm | auto (default auto). Pins
                          every SELECT to one execution engine server-wide;
                          auto lets the adaptive router pick per template
                          from observed latencies. Sessions can override
                          with SET engine = <e>
  --trace                 arm the runtime tracing toggle: engine timing
                          counters (WAL fsync, checkpoint) are sampled and
                          exposed via {\"cmd\":\"metrics\"}";
