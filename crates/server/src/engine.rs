//! The query engine behind the wire protocol: statement dispatch over a
//! [`SharedDatabase`], independent of any transport.
//!
//! One [`Engine`] is shared by every connection. Reads execute against an
//! O(1) copy-on-write snapshot ([`SharedDatabase::snapshot`]) so they never
//! block writers; writes are routed through [`SharedDatabase::write`] and
//! become visible atomically (a multi-row `INSERT` is one write call, so a
//! concurrent reader sees all of its rows or none).
//!
//! SELECT plans are reused across sessions via the [`PlanCache`], keyed by
//! the *canonical statement template*: text-mode queries are
//! auto-parameterized (WHERE literals lifted into slots), so SSB Q1.1 with
//! different date literals is one cache entry and every request is a cheap
//! bind instead of a re-plan. Protocol v2 (`{"prepare":…}` /
//! `{"execute":{"id":…,"params":[…]}}` frames, per-session
//! [`StatementRegistry`]) removes the per-request parse as well.
//!
//! Writes commit in **groups**: each writer stages its statement and the
//! first stager becomes the batch leader, which validates and applies the
//! whole batch onto a private copy-on-write clone, appends every surviving
//! statement to the write-ahead log with **one fsync**, and publishes the
//! new catalog image with a single pointer swap. Statements that fail
//! validation are bounced out of the batch individually (per-statement
//! conflict detection) — one bad write never aborts its batchmates. The
//! write latch is held only for the pointer swap, so readers taking
//! snapshots never wait on statement application or WAL I/O, and an
//! acknowledged write is always on disk before its response frame leaves.
//! The WAL is folded back into the snapshot by `{"cmd":"checkpoint"}` or
//! automatically once it accumulates `checkpoint_every` records; the fold
//! encodes from a COW snapshot *outside* the commit lock, so checkpoints no
//! longer stall writers for the duration of the encode.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use astore_baseline::engine::execute_hash_pipeline;
use astore_core::exec::{execute, ExecOptions, ExecOutput};
use astore_core::graph::JoinGraph;
use astore_core::query::Query;
use astore_core::result::QueryResult;
use astore_core::universal::bind_root;
use astore_obs::TraceBuf;
use astore_persist::apply::{apply_statement, validate_statement};
use astore_persist::store;
use astore_persist::wal::Wal;
use astore_sql::prepared::{
    canonicalize, extract_select_params, prepare_template, BoundStatement, PrepareError, Prepared,
};
use astore_sql::statement::{
    parse_template, strip_explain, strip_explain_analyze, Statement, StatementTemplate,
};
use astore_storage::catalog::Database;
use astore_storage::snapshot::SharedDatabase;
use astore_storage::types::Value;

use crate::budget::CoreBudget;
use crate::cache::PlanCache;
use crate::json::Json;
use crate::metrics::{render_prometheus, SlowLog, TemplateStats};
use crate::router::{query_rewritable, DenormCache, EngineChoice, Features, Router, RouterConfig};
use crate::session::StatementRegistry;
use crate::stats::ServerStats;

/// Machine-readable error codes of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame is not valid JSON or lacks a recognized member.
    BadRequest,
    /// SQL lexing/parsing failed.
    ParseError,
    /// Planning failed (unknown table/column, invalid join, …).
    PlanError,
    /// Query execution failed (binding error at run time).
    ExecError,
    /// A write statement was rejected (unknown table, arity/type mismatch,
    /// dangling key, dead row, …).
    WriteError,
    /// An `{"execute":…}` frame named a statement id this session never
    /// prepared (or one that was closed/evicted).
    UnknownStatement,
    /// Parameter binding failed: wrong parameter count, or a value whose
    /// kind cannot satisfy the column its slot is compared against.
    ParamError,
    /// Admission control shed the request: the worker queue is full.
    ServerBusy,
    /// The connection limit was reached; this connection is being closed.
    TooManyConnections,
    /// The worker running the statement panicked.
    InternalError,
}

impl ErrorCode {
    /// The wire name of the code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::PlanError => "plan_error",
            ErrorCode::ExecError => "exec_error",
            ErrorCode::WriteError => "write_error",
            ErrorCode::UnknownStatement => "unknown_statement",
            ErrorCode::ParamError => "param_error",
            ErrorCode::ServerBusy => "server_busy",
            ErrorCode::TooManyConnections => "too_many_connections",
            ErrorCode::InternalError => "internal_error",
        }
    }
}

/// Maps a prepare failure to its wire error frame.
fn prepare_error_frame(e: PrepareError) -> Json {
    match e {
        PrepareError::Parse(e) => error_frame(ErrorCode::ParseError, e.to_string()),
        PrepareError::Plan(e) => error_frame(ErrorCode::PlanError, e.to_string()),
    }
}

/// Builds an `{"ok":false,"code":…,"error":…}` frame.
pub fn error_frame(code: ErrorCode, message: impl Into<String>) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("code", Json::Str(code.as_str().to_owned())),
        ("error", Json::Str(message.into())),
    ])
}

/// The durability attachment of an [`Engine`]: the data directory and its
/// open write-ahead log.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    wal: Mutex<Wal>,
    /// Auto-checkpoint once this many records accumulate (0 = only on
    /// explicit `{"cmd":"checkpoint"}`).
    checkpoint_every: u64,
}

impl Durability {
    /// Wraps an open WAL rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>, wal: Wal, checkpoint_every: u64) -> Self {
        Durability { dir: dir.into(), wal: Mutex::new(wal), checkpoint_every }
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// One staged write waiting for its result: the committing leader fills
/// `done` and signals `cv`; the staging connection blocks on the pair.
#[derive(Debug, Default)]
struct WriteSlot {
    done: Mutex<Option<Result<usize, Json>>>,
    cv: Condvar,
}

impl WriteSlot {
    fn finish(&self, result: Result<usize, Json>) {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        *done = Some(result);
        self.cv.notify_one();
    }

    fn wait(&self) -> Result<usize, Json> {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(r) = done.take() {
                return r;
            }
            done = self.cv.wait(done).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// A write staged for the next group-commit batch.
#[derive(Debug)]
struct PendingWrite {
    stmt: Statement,
    wal_sql: String,
    slot: Arc<WriteSlot>,
}

/// The group-commit staging area. `leader_active` makes leader election
/// race-free: exactly one stager flips it and drains the queue; everyone
/// else parks on their slot.
#[derive(Debug, Default)]
struct CommitState {
    pending: Vec<PendingWrite>,
    leader_active: bool,
}

/// The shared serving engine: database handle, plan cache, counters, and
/// the global core budget shared by inter- and intra-query parallelism.
#[derive(Debug)]
pub struct Engine {
    db: SharedDatabase,
    cache: PlanCache,
    stats: ServerStats,
    templates: TemplateStats,
    slowlog: SlowLog,
    opts: ExecOptions,
    budget: Arc<CoreBudget>,
    router: Router,
    denorm_cache: DenormCache,
    durability: Option<Durability>,
    /// Write staging area (see [`CommitState`]).
    commit: Mutex<CommitState>,
    /// Serializes catalog publication: the batch leader, the brief latched
    /// phases of a checkpoint, and compactor installs. Never held across
    /// snapshot encoding or while a response is being written — WAL fsync
    /// is the only I/O under it (that *is* the commit point).
    commit_lock: Mutex<()>,
    /// One checkpoint at a time; auto-checkpoint skips (try-lock) instead
    /// of queueing a redundant fold behind an in-flight one.
    checkpoint_lock: Mutex<()>,
}

impl Engine {
    /// Wraps a shared database with default execution options (serial
    /// per-query execution — parallelism comes from serving many queries
    /// at once, not from splitting one).
    pub fn new(db: SharedDatabase) -> Self {
        Engine::with_options(db, ExecOptions::default())
    }

    /// Wraps a shared database with explicit per-query execution options.
    ///
    /// `opts.threads` is the per-query fan-out *ceiling* (`--engine-threads`
    /// on `astore-serve`). Each query's actual thread count is decided at
    /// run time: the planner clamps it to the estimated scan size, and the
    /// [`CoreBudget`] — sized to the machine's available parallelism —
    /// grants only the cores not already busy serving other statements. An
    /// `opts.threads` above the host's parallelism no longer inflates the
    /// budget (that oversubscribed every statement at once); it is kept as
    /// the per-query ceiling but the budget clamps to real cores.
    pub fn with_options(db: SharedDatabase, opts: ExecOptions) -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        if opts.threads > cores {
            eprintln!(
                "astore-server: --engine-threads {} exceeds host parallelism {cores}; \
                 core budget clamped to {cores}",
                opts.threads
            );
        }
        let budget = Arc::new(CoreBudget::new(cores));
        let engine = Engine {
            db,
            cache: PlanCache::default(),
            stats: ServerStats::new(),
            templates: TemplateStats::new(),
            slowlog: SlowLog::default(),
            opts,
            budget,
            router: Router::new(RouterConfig::default()),
            denorm_cache: DenormCache::new(),
            durability: None,
            commit: Mutex::new(CommitState::default()),
            commit_lock: Mutex::new(()),
            checkpoint_lock: Mutex::new(()),
        };
        // Seal whatever the boot image carried unsealed (a v2 snapshot, a
        // WAL replay tail) so the scan path starts on encoded segments, and
        // prime the footprint gauges.
        engine.seal_and_gauge();
        engine
    }

    /// Seals every full segment in place and refreshes the
    /// `encoded_bytes` / `raw_bytes` gauges. Boot only — once the engine is
    /// shared, in-place mutation outside the commit lock would race the
    /// group-commit leader; checkpoints seal under the commit lock instead.
    fn seal_and_gauge(&self) {
        self.db.write(|db| {
            for name in db.table_names().to_vec() {
                if let Some(t) = db.table_mut_in_place(&name) {
                    t.seal_segments();
                }
            }
        });
        self.gauge_footprint();
    }

    /// Refreshes the `encoded_bytes` / `raw_bytes` gauges from a snapshot.
    fn gauge_footprint(&self) {
        let snap = self.db.snapshot();
        let (mut enc, mut raw) = (0u64, 0u64);
        for name in snap.table_names() {
            if let Some(t) = snap.table(name) {
                let (e, r) = t.encoded_footprint();
                enc += e;
                raw += r;
            }
        }
        use std::sync::atomic::Ordering;
        self.stats.encoded_bytes.store(enc, Ordering::Relaxed);
        self.stats.raw_bytes.store(raw, Ordering::Relaxed);
    }

    /// Sets the slow-query capture threshold in milliseconds
    /// (`--slow-ms`; 0 = capture off).
    pub fn slow_ms(self, ms: u64) -> Self {
        self.slowlog.set_threshold_ms(ms);
        self
    }

    /// Overrides the core-budget size (tests; production sizing is
    /// automatic in [`Engine::with_options`]).
    pub fn core_budget(mut self, total: usize) -> Self {
        self.budget = Arc::new(CoreBudget::new(total));
        self
    }

    /// The global core budget.
    pub fn budget(&self) -> &CoreBudget {
        &self.budget
    }

    /// A shareable handle to the core budget, for wiring the same permit
    /// pool into the scheduler's scan gate
    /// ([`crate::sched::PriorityPool::with_budget`]).
    pub fn budget_handle(&self) -> Arc<CoreBudget> {
        Arc::clone(&self.budget)
    }

    /// Replaces the adaptive router's configuration (`--engine` pin,
    /// explore cadence, warmup window). Construction-time only: any learned
    /// per-template history is discarded.
    pub fn router_config(mut self, config: RouterConfig) -> Self {
        self.router = Router::new(config);
        self
    }

    /// The adaptive engine router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The denormalized-materialization cache (epoch-invalidated on write).
    pub fn denorm_cache(&self) -> &DenormCache {
        &self.denorm_cache
    }

    /// Attaches a durability layer: writes are WAL-logged before they are
    /// acknowledged, and checkpoints fold the log into the snapshot.
    pub fn durable(mut self, durability: Durability) -> Self {
        self.durability = Some(durability);
        self
    }

    /// The attached durability layer, if any.
    pub fn durability(&self) -> Option<&Durability> {
        self.durability.as_ref()
    }

    /// Folds the live database into a fresh snapshot and truncates the WAL
    /// through the folded LSN. Returns `(checkpoint LSN, snapshot bytes)`.
    ///
    /// The expensive part — encoding and writing the snapshot file — runs
    /// against a COW snapshot with **no locks held**: writers keep
    /// committing and readers keep scanning while the file is built. Only
    /// two brief phases take the commit lock: fixing the (image, LSN) pair
    /// at the start, and truncating the WAL + flipping clean flags at the
    /// end. Writes that land mid-encode survive in the truncated WAL tail
    /// and replay on the next boot.
    pub fn checkpoint(&self) -> Result<(u64, usize), String> {
        let d = self.durability.as_ref().ok_or("server is running without --data-dir")?;
        let _one = self.checkpoint_lock.lock().unwrap_or_else(|p| p.into_inner());
        self.checkpoint_locked(d)
    }

    /// The checkpoint body; caller holds `checkpoint_lock`.
    fn checkpoint_locked(&self, d: &Durability) -> Result<(u64, usize), String> {
        // Phase 1 (commit lock, brief): seal in place, then fix the image
        // and the last LSN it covers. No batch can publish between the two
        // reads, so every statement with LSN ≤ `last` is in `snap`.
        let (snap, last) = {
            let _c = self.commit_lock.lock().unwrap_or_else(|p| p.into_inner());
            self.db.write(|db| {
                for name in db.table_names().to_vec() {
                    if let Some(t) = db.table_mut_in_place(&name) {
                        t.seal_segments();
                    }
                }
            });
            let wal = d.wal.lock().unwrap_or_else(|p| p.into_inner());
            (self.db.snapshot(), wal.last_lsn())
        };

        // Phase 2 (no locks): encode and write the snapshot file from the
        // frozen image while the server keeps serving.
        let bytes = store::write_checkpoint(&d.dir, &snap, last).map_err(|e| e.to_string())?;

        // Phase 3 (commit lock, brief): drop WAL records the file now
        // covers, then flip clean flags on tables the live catalog still
        // shares with the image (a table written mid-encode is *not* in
        // the file as encoded — it must stay dirty for the next round).
        {
            let _c = self.commit_lock.lock().unwrap_or_else(|p| p.into_inner());
            {
                let mut wal = d.wal.lock().unwrap_or_else(|p| p.into_inner());
                wal.truncate_through(last).map_err(|e| e.to_string())?;
            }
            let cur = self.db.snapshot();
            let unchanged: Vec<String> = cur
                .table_names()
                .iter()
                .filter(|name| match (cur.table_arc(name), snap.table_arc(name)) {
                    (Some(a), Some(b)) => Arc::ptr_eq(&a, &b),
                    _ => false,
                })
                .cloned()
                .collect();
            // Both outstanding handles must go before the in-place flip can
            // see an unshared table.
            drop(cur);
            drop(snap);
            self.db.write(|db| {
                for name in &unchanged {
                    if let Some(t) = db.table_mut_in_place(name) {
                        t.mark_segments_clean();
                    }
                }
            });
        }
        self.stats.checkpoints.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.gauge_footprint();
        Ok((last, bytes))
    }

    /// Auto-checkpoint when the WAL has accumulated enough records.
    fn maybe_auto_checkpoint(&self) {
        let Some(d) = &self.durability else { return };
        if d.checkpoint_every == 0 {
            return;
        }
        // A whole batch of writers lands here at once after a group
        // commit; one of them folds, the rest skip (their fold would be a
        // redundant pass over an already-truncated log).
        let Ok(_one) = self.checkpoint_lock.try_lock() else { return };
        let due = {
            let wal = d.wal.lock().unwrap_or_else(|p| p.into_inner());
            wal.appended_since_reset() >= d.checkpoint_every
        };
        if due {
            if let Err(e) = self.checkpoint_locked(d) {
                eprintln!("auto-checkpoint failed: {e}");
            }
        }
    }

    /// The underlying shared database handle.
    pub fn database(&self) -> &SharedDatabase {
        &self.db
    }

    /// The server-wide counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Per-canonical-template latency histograms.
    pub fn templates(&self) -> &TemplateStats {
        &self.templates
    }

    /// The slow-query ring buffer.
    pub fn slowlog(&self) -> &SlowLog {
        &self.slowlog
    }

    /// Records one finished statement under its canonical template: the
    /// per-template latency series plus, above the `--slow-ms` threshold,
    /// the slow-query ring. `t` is the statement's own start instant (a
    /// hair tighter than the `timed` wrapper's, which also covers frame
    /// assembly — close enough for per-shape monitoring).
    fn observe_template(&self, key: &str, t: Instant) {
        let us = t.elapsed().as_micros() as u64;
        self.templates.record(key, us);
        self.slowlog.observe(key, us);
    }

    /// Looks a canonical template up in the shared plan cache, planning
    /// and inserting on miss. Returns the plan and whether it was cached.
    fn cached_plan(
        &self,
        key: String,
        tmpl: StatementTemplate,
        snap: &Arc<Database>,
    ) -> Result<(Arc<Prepared>, bool), Json> {
        match self.cache.get(&key) {
            Some(p) => Ok((p, true)),
            None => {
                let p = Arc::new(prepare_template(tmpl, snap).map_err(prepare_error_frame)?);
                self.cache.insert(key, Arc::clone(&p));
                Ok((p, false))
            }
        }
    }

    /// Handles one raw request line with a throwaway statement registry —
    /// convenient for callers that never send prepare/execute frames.
    pub fn handle_line(&self, line: &str) -> Json {
        let mut session = StatementRegistry::default();
        self.handle_line_session(line, &mut session)
    }

    /// Handles one raw request line against a connection's statement
    /// registry and returns the response frame.
    pub fn handle_line_session(&self, line: &str, session: &mut StatementRegistry) -> Json {
        let req = match crate::json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.stats.errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return error_frame(ErrorCode::BadRequest, e.to_string());
            }
        };
        self.handle_request(&req, session)
    }

    /// Runs a statement-shaped request, recording latency and the error
    /// counter, and stamping `elapsed_us` into success frames.
    fn timed(&self, f: impl FnOnce() -> Result<Json, Json>) -> Json {
        use std::sync::atomic::Ordering::Relaxed;
        let t = Instant::now();
        let resp = f();
        let us = t.elapsed().as_micros() as u64;
        self.stats.latency.record(us);
        match resp {
            Ok(mut ok) => {
                if let Json::Object(m) = &mut ok {
                    m.insert("elapsed_us".into(), Json::Int(us as i64));
                }
                ok
            }
            Err(frame) => {
                self.stats.errors.fetch_add(1, Relaxed);
                frame
            }
        }
    }

    /// Handles one parsed request frame.
    pub fn handle_request(&self, req: &Json, session: &mut StatementRegistry) -> Json {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(sql) = req.get("sql").and_then(Json::as_str) {
            self.timed(|| self.run_statement(sql, session))
        } else if let Some(sql) = req.get("prepare").and_then(Json::as_str) {
            match self.run_prepare(sql, session) {
                Ok(ok) => ok,
                Err(frame) => {
                    self.stats.errors.fetch_add(1, Relaxed);
                    frame
                }
            }
        } else if let Some(ex) = req.get("execute") {
            self.timed(|| self.run_execute(ex, session))
        } else if let Some(id) = req.get("close") {
            match id.as_i64() {
                Some(id) if id >= 0 => {
                    let closed = session.close(id as u64);
                    Json::obj([("ok", Json::Bool(true)), ("closed", Json::Bool(closed))])
                }
                _ => {
                    self.stats.errors.fetch_add(1, Relaxed);
                    error_frame(ErrorCode::BadRequest, "\"close\" takes a statement id")
                }
            }
        } else if let Some(cmd) = req.get("cmd").and_then(Json::as_str) {
            match cmd {
                "stats" => {
                    let mut s = self.stats.to_json(&self.cache);
                    if let Json::Object(m) = &mut s {
                        m.insert("engine_threads".into(), Json::Int(self.opts.threads as i64));
                        m.insert("core_budget_total".into(), Json::Int(self.budget.total() as i64));
                        m.insert(
                            "core_budget_in_use".into(),
                            Json::Int(self.budget.in_use() as i64),
                        );
                        let snap = self.db.snapshot();
                        let delta: u64 = snap
                            .table_names()
                            .iter()
                            .filter_map(|n| snap.table(n))
                            .map(|t| t.delta_rows())
                            .sum();
                        m.insert("delta_rows".into(), Json::Int(delta as i64));
                        m.insert("db_version".into(), Json::Int(snap.version() as i64));
                        m.insert("templates".into(), self.templates.to_json());
                        let rsnap = self.router.snapshot();
                        m.insert(
                            "router_templates".into(),
                            Json::Int(rsnap.templates.len() as i64),
                        );
                        m.insert("router_regret_us".into(), Json::Float(rsnap.total_regret_us));
                        m.insert(
                            "denorm_cache_entries".into(),
                            Json::Int(self.denorm_cache.len() as i64),
                        );
                    }
                    Json::obj([("ok", Json::Bool(true)), ("stats", s)])
                }
                "metrics" => {
                    let gauges = [
                        (
                            "astore_server_engine_threads",
                            "Per-query fan-out ceiling.",
                            self.opts.threads as f64,
                        ),
                        (
                            "astore_server_core_budget_total",
                            "Cores in the shared budget.",
                            self.budget.total() as f64,
                        ),
                        (
                            "astore_server_core_budget_in_use",
                            "Cores currently granted to statements.",
                            self.budget.in_use() as f64,
                        ),
                    ];
                    let body = render_prometheus(
                        &self.stats,
                        &self.cache,
                        &self.templates,
                        &self.slowlog,
                        &gauges,
                    );
                    Json::obj([("ok", Json::Bool(true)), ("metrics", Json::Str(body))])
                }
                "slowlog" => {
                    Json::obj([("ok", Json::Bool(true)), ("slowlog", self.slowlog.to_json())])
                }
                "ping" => Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
                "checkpoint" => match self.checkpoint() {
                    Ok((lsn, bytes)) => Json::obj([
                        ("ok", Json::Bool(true)),
                        ("lsn", Json::Int(lsn as i64)),
                        ("snapshot_bytes", Json::Int(bytes as i64)),
                    ]),
                    Err(e) => {
                        self.stats.errors.fetch_add(1, Relaxed);
                        error_frame(ErrorCode::BadRequest, e)
                    }
                },
                other => {
                    self.stats.errors.fetch_add(1, Relaxed);
                    error_frame(ErrorCode::BadRequest, format!("unknown cmd {other:?}"))
                }
            }
        } else {
            self.stats.errors.fetch_add(1, Relaxed);
            error_frame(
                ErrorCode::BadRequest,
                "request needs a \"sql\", \"prepare\", \"execute\", \"close\" or \"cmd\" member",
            )
        }
    }

    /// The text path (`{"sql":…}`): parse, canonicalize into a parameter
    /// template (WHERE literals lifted out), look the template up in the
    /// shared plan cache, bind the extracted literals back, execute. Two
    /// literal variants of the same query — or two formattings of it —
    /// share one plan.
    fn run_statement(&self, sql: &str, session: &mut StatementRegistry) -> Result<Json, Json> {
        if let Some(parsed) = parse_set_engine(sql) {
            let pin = parsed.map_err(|m| error_frame(ErrorCode::ParseError, m))?;
            session.set_engine_pin(pin);
            return Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("engine", Json::Str(pin.map_or("auto", EngineChoice::as_str).to_owned())),
            ]));
        }
        let pin = session.engine_pin();
        if let Some(inner) = strip_explain_analyze(sql) {
            return self.run_explain_analyze(inner, pin);
        }
        if let Some(inner) = strip_explain(sql) {
            return self.run_explain(inner, pin);
        }
        let mut tmpl =
            parse_template(sql).map_err(|e| error_frame(ErrorCode::ParseError, e.to_string()))?;
        // Whether the *client* wrote placeholders: decides how a bind
        // failure is reported (auto-extracted literals are not the
        // client's parameters, so their type errors are plan errors).
        let explicit_params = tmpl.param_count() > 0;
        let inline = extract_select_params(&mut tmpl);
        // This statement's worker thread occupies one core for the
        // duration; the budget must know so concurrent queries' fan-out
        // grants shrink accordingly.
        let _slot = self.budget.enter_statement();
        let key = canonicalize(&mut tmpl);
        let t = Instant::now();
        if tmpl.is_select() {
            let snap = self.db.snapshot();
            let (prepared, cached) = self.cached_plan(key.clone(), tmpl, &snap)?;
            let bind_code =
                if explicit_params { ErrorCode::ParamError } else { ErrorCode::PlanError };
            let out =
                self.exec_select(&snap, &prepared, &inline, cached, bind_code, None, &key, pin);
            if out.is_ok() {
                self.observe_template(&key, t);
            }
            out
        } else {
            // Text-mode writes carry no parameters; a placeholder here is
            // a protocol error (prepare/execute is the parameterized path).
            let stmt = tmpl
                .into_concrete()
                .map_err(|e| error_frame(ErrorCode::ParamError, e.to_string()))?;
            // canonicalize() above case-folded identifiers in place, so the
            // applied statement may differ from the client's raw text (e.g.
            // `INSERT INTO FACT` applies to table `fact`). The WAL must
            // record the canonical rendering: replay parses it verbatim,
            // without case-folding.
            let wal_sql = stmt.to_sql().expect("concrete write renders");
            let out = self.exec_write(&stmt, &wal_sql);
            if out.is_ok() {
                self.observe_template(&key, t);
            }
            out
        }
    }

    /// `EXPLAIN ANALYZE <select>`: runs the statement with a span recorder
    /// attached — regardless of the global tracing toggle — and returns
    /// the query result plus an `analyze` member: the executed plan
    /// annotated with actual per-phase times, morsel spans and per-segment
    /// prune decisions.
    fn run_explain_analyze(&self, sql: &str, pin: Option<EngineChoice>) -> Result<Json, Json> {
        let mut tmpl =
            parse_template(sql).map_err(|e| error_frame(ErrorCode::ParseError, e.to_string()))?;
        let explicit_params = tmpl.param_count() > 0;
        let inline = extract_select_params(&mut tmpl);
        if !tmpl.is_select() {
            return Err(error_frame(
                ErrorCode::PlanError,
                "EXPLAIN ANALYZE supports SELECT statements only",
            ));
        }
        let _slot = self.budget.enter_statement();
        let key = canonicalize(&mut tmpl);
        let t = Instant::now();
        let snap = self.db.snapshot();
        let (prepared, cached) = self.cached_plan(key.clone(), tmpl, &snap)?;
        let bind_code = if explicit_params { ErrorCode::ParamError } else { ErrorCode::PlanError };
        let trace = Arc::new(TraceBuf::new());
        let out =
            self.exec_select(&snap, &prepared, &inline, cached, bind_code, Some(trace), &key, pin);
        if out.is_ok() {
            self.observe_template(&key, t);
        }
        out
    }

    /// The `{"prepare":…}` path: plan (or fetch from the shared plan
    /// cache) and register the template in the session's registry.
    fn run_prepare(&self, sql: &str, session: &mut StatementRegistry) -> Result<Json, Json> {
        use std::sync::atomic::Ordering::Relaxed;
        let mut tmpl =
            parse_template(sql).map_err(|e| error_frame(ErrorCode::ParseError, e.to_string()))?;
        let key = canonicalize(&mut tmpl);
        let key_arc: Arc<str> = Arc::from(key.as_str());
        let is_select = tmpl.is_select();
        // Only fully parameterized SELECTs go through the shared plan
        // cache: write templates carry no plan, and a SELECT with inline
        // WHERE literals would key per-literal — a client preparing fresh
        // literal SQL each request could flood the FIFO and evict the hot
        // shared templates. (The text path extracts literals before
        // keying, so its templates are always cacheable.)
        let cacheable = is_select && !tmpl.has_predicate_literals();
        let prepared = match cacheable.then(|| self.cache.get(&key)).flatten() {
            Some(p) => p,
            None => {
                let snap = self.db.snapshot();
                let p = Arc::new(prepare_template(tmpl, &snap).map_err(prepare_error_frame)?);
                if cacheable {
                    self.cache.insert(key, Arc::clone(&p));
                }
                p
            }
        };
        let param_count = prepared.param_count() as i64;
        let columns =
            prepared.columns().map(|cs| Json::Array(cs.iter().cloned().map(Json::Str).collect()));
        let column_types = prepared
            .column_types()
            .map(|ts| Json::Array(ts.iter().map(|t| Json::Str(t.to_string())).collect()));
        let (id, evicted) = session.register(key_arc, prepared);
        self.stats.prepares.fetch_add(1, Relaxed);
        let mut frame = Json::obj([
            ("ok", Json::Bool(true)),
            ("stmt_id", Json::Int(id as i64)),
            ("param_count", Json::Int(param_count)),
            ("kind", Json::Str(if is_select { "select".into() } else { "write".into() })),
        ]);
        if let Json::Object(m) = &mut frame {
            if let Some(cols) = columns {
                m.insert("columns".into(), cols);
            }
            if let Some(types) = column_types {
                m.insert("column_types".into(), types);
            }
            if let Some(old) = evicted {
                m.insert("evicted_stmt".into(), Json::Int(old as i64));
            }
        }
        Ok(frame)
    }

    /// The `{"execute":{"id":…,"params":[…]}}` path: look the statement up
    /// in the session registry, bind, run. No SQL text is parsed here —
    /// this is the bind-per-request hot path.
    fn run_execute(&self, ex: &Json, session: &StatementRegistry) -> Result<Json, Json> {
        use std::sync::atomic::Ordering::Relaxed;
        let id = ex.get("id").and_then(Json::as_i64).filter(|id| *id >= 0).ok_or_else(|| {
            error_frame(ErrorCode::BadRequest, "\"execute\" needs a statement \"id\"")
        })?;
        let registered = session.get(id as u64).ok_or_else(|| {
            error_frame(
                ErrorCode::UnknownStatement,
                format!("statement {id} is not prepared in this session"),
            )
        })?;
        let prepared = registered.prepared;
        let params = match ex.get("params") {
            None => Vec::new(),
            Some(Json::Array(items)) => items
                .iter()
                .map(json_to_param)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|m| error_frame(ErrorCode::ParamError, m))?,
            Some(_) => {
                return Err(error_frame(ErrorCode::BadRequest, "\"params\" must be an array"))
            }
        };
        let _slot = self.budget.enter_statement();
        self.stats.prepared_execs.fetch_add(1, Relaxed);
        let t = Instant::now();
        let out = if prepared.is_select() {
            let snap = self.db.snapshot();
            self.exec_select(
                &snap,
                &prepared,
                &params,
                true,
                ErrorCode::ParamError,
                None,
                &registered.key,
                session.engine_pin(),
            )
        } else {
            let stmt = match prepared
                .bind(&params)
                .map_err(|e| error_frame(ErrorCode::ParamError, e.to_string()))?
            {
                BoundStatement::Write(s) => s,
                BoundStatement::Select(_) => unreachable!("is_select checked"),
            };
            let wal_sql = stmt.to_sql().expect("bound write renders");
            self.exec_write(&stmt, &wal_sql)
        };
        if out.is_ok() {
            self.observe_template(&registered.key, t);
        }
        out
    }

    /// Binds parameters into a prepared SELECT, routes it to an engine, and
    /// executes it against a snapshot. `bind_code` is the error code a bind
    /// failure maps to: `param_error` when the client supplied the
    /// parameters, `plan_error` when they are auto-extracted literals of a
    /// text-mode statement (the client never wrote a `$n`). With `trace`
    /// attached (the `EXPLAIN ANALYZE` path), spans are recorded during
    /// execution and the response gains an `analyze` member.
    ///
    /// Engine dispatch: the adaptive [`Router`] picks AIR, the hash-join
    /// baseline, or a cached denormalized scan per canonical template
    /// (`key`), honoring a session/server `pin`. The non-AIR arms are bound
    /// by a hard result-identity contract and **fall back to AIR** on any
    /// engine failure or unrewritable shape — routing can never fail a
    /// query that forced-AIR would answer. The observed engine latency
    /// feeds the router's per-arm history and the per-engine histograms.
    #[allow(clippy::too_many_arguments)]
    fn exec_select(
        &self,
        snap: &Arc<Database>,
        prepared: &Prepared,
        params: &[Value],
        cached: bool,
        bind_code: ErrorCode,
        trace: Option<Arc<TraceBuf>>,
        key: &str,
        pin: Option<EngineChoice>,
    ) -> Result<Json, Json> {
        use std::sync::atomic::Ordering::Relaxed;
        let query = match prepared.bind(params).map_err(|e| match bind_code {
            ErrorCode::PlanError => error_frame(
                ErrorCode::PlanError,
                format!("type mismatch in predicate literal: {e}"),
            ),
            code => error_frame(code, e.to_string()),
        })? {
            BoundStatement::Select(q) => q,
            BoundStatement::Write(_) => {
                return Err(error_frame(ErrorCode::BadRequest, "statement is not a SELECT"))
            }
        };
        let eligible = self.engine_eligibility(snap, &query, key);
        let decision = self.router.decide(key, eligible, pin);
        let mut engine_used = decision.choice;
        let t_engine = Instant::now();
        let run = match decision.choice {
            EngineChoice::Air => self.run_air(snap, &query, &trace)?,
            EngineChoice::Join => match self.run_join(snap, &query, trace.is_some()) {
                Some(r) => r,
                None => {
                    engine_used = EngineChoice::Air;
                    self.run_air(snap, &query, &trace)?
                }
            },
            EngineChoice::Denorm => match self.run_denorm(snap, &query, key, trace.is_some()) {
                Some(r) => r,
                None => {
                    engine_used = EngineChoice::Air;
                    self.run_air(snap, &query, &trace)?
                }
            },
        };
        let engine_us = t_engine.elapsed().as_micros() as u64;
        let obs = self.router.observe(key, engine_used, engine_us as f64);
        self.stats.engine_latency[engine_used.index()].record(engine_us);
        let (result, scanned, pruned, parallel, denied) = match &run {
            EngineRun::Air { out, want } => (
                &out.result,
                out.plan.segments_scanned,
                out.plan.segments_pruned,
                out.plan.executor.is_parallel(),
                // The planner wanted to fan out but the query ran serial
                // (budget exhausted or final row-count clamp). A fully-pruned
                // scan is excluded: zone maps proving there is nothing to scan
                // is not a denial.
                !out.plan.executor.is_parallel() && *want > 1 && out.plan.segments_scanned > 0,
            ),
            EngineRun::Other { result, .. } => (result, 0, 0, false, false),
        };
        {
            // One statement's counter updates form one seqlock write
            // group, so a concurrent stats snapshot sees all of them or
            // none (e.g. never pruned bumped but scanned not yet).
            let _group = self.stats.group.begin_write();
            self.stats.router_decisions[engine_used.index()].fetch_add(1, Relaxed);
            if obs.mispredicted {
                self.stats.router_mispredictions.fetch_add(1, Relaxed);
            }
            if parallel {
                self.stats.parallel_queries.fetch_add(1, Relaxed);
            } else if denied {
                self.stats.parallel_denied.fetch_add(1, Relaxed);
            }
            self.stats.segments_scanned.fetch_add(scanned as u64, Relaxed);
            self.stats.segments_pruned.fetch_add(pruned as u64, Relaxed);
            self.stats.queries.fetch_add(1, Relaxed);
        }
        let mut frame = Json::obj([
            ("ok", Json::Bool(true)),
            ("columns", Json::Array(result.columns.iter().cloned().map(Json::Str).collect())),
            (
                "rows",
                Json::Array(
                    result
                        .rows
                        .iter()
                        .map(|r| Json::Array(r.iter().map(value_to_json).collect()))
                        .collect(),
                ),
            ),
            ("row_count", Json::Int(result.rows.len() as i64)),
            ("cached_plan", Json::Bool(cached)),
            ("engine", Json::Str(engine_used.as_str().to_owned())),
            ("segments_scanned", Json::Int(scanned as i64)),
            ("segments_pruned", Json::Int(pruned as i64)),
        ]);
        if let (Some(t), Json::Object(m)) = (&trace, &mut frame) {
            let mut lines = vec![format!(
                "router: engine={} reason={} elapsed={engine_us}us",
                engine_used.as_str(),
                decision.reason.as_str()
            )];
            match &run {
                EngineRun::Air { out, .. } => {
                    lines.extend(astore_core::analyze::render_analyze(out, t));
                }
                EngineRun::Other { lines: engine_lines, .. } => {
                    lines.extend(engine_lines.iter().cloned());
                }
            }
            m.insert("analyze".into(), Json::Array(lines.into_iter().map(Json::Str).collect()));
        }
        Ok(frame)
    }

    /// Which engines can serve this query. AIR always can. Neither the
    /// join pipeline's universal relation nor the denormalized wide table
    /// carries positional row addresses, so any `rowid` predicate is
    /// AIR-only. Denorm is additionally gated on fact size (materializing a
    /// huge fact would dwarf any benefit) and on the cached shape probe.
    fn engine_eligibility(&self, snap: &Database, query: &Query, key: &str) -> [bool; 3] {
        let uses_rowid = query.selections.iter().any(|(_, p)| p.columns().contains(&"rowid"));
        let mut eligible = [true; 3];
        eligible[EngineChoice::Join.index()] = !uses_rowid;
        eligible[EngineChoice::Denorm.index()] = !uses_rowid
            && estimated_scan_rows(snap, query) <= self.router.config().denorm_max_fact_rows
            && self.router.denorm_rewritable(key) != Some(false);
        eligible
    }

    /// The production AIR arm: morsel fan-out under the core budget's
    /// grant. Zero grant = serial — never blocking, never oversubscribing.
    fn run_air(
        &self,
        snap: &Arc<Database>,
        query: &Query,
        trace: &Option<Arc<TraceBuf>>,
    ) -> Result<EngineRun, Json> {
        let want =
            self.opts.optimizer.plan_threads(estimated_scan_rows(snap, query), self.opts.threads);
        let extra = self.budget.try_extra(want.saturating_sub(1));
        let mut exec_opts = ExecOptions { threads: 1 + extra.held(), ..self.opts.clone() };
        if let Some(t) = trace {
            exec_opts = exec_opts.trace(Arc::clone(t));
        }
        let out = execute(snap, query, &exec_opts)
            .map_err(|e| error_frame(ErrorCode::ExecError, e.to_string()))?;
        drop(extra);
        Ok(EngineRun::Air { out, want })
    }

    /// The hash-join baseline arm. `None` = engine failure; the caller
    /// falls back to AIR, so a routed query never fails where forced AIR
    /// would succeed.
    fn run_join(&self, snap: &Database, query: &Query, traced: bool) -> Option<EngineRun> {
        let hp = execute_hash_pipeline(snap, query).ok()?;
        let lines = if traced {
            vec![format!(
                "engine: join  build={}us probe={}us selected_rows={}",
                hp.build_time.as_micros(),
                hp.probe_time.as_micros(),
                hp.selected_rows
            )]
        } else {
            Vec::new()
        };
        Some(EngineRun::Other { result: hp.result, lines })
    }

    /// The cached-denormalization arm: rewrite the query onto the wide
    /// table and scan it serially. The cache entry is epoch-validated
    /// against this snapshot, so a write to any folded table forces a
    /// rebuild — stale rows are never served. An unrewritable shape is
    /// remembered (`set_denorm_rewritable`) so the router stops offering
    /// this arm for the template; `None` falls back to AIR.
    fn run_denorm(
        &self,
        snap: &Arc<Database>,
        query: &Query,
        key: &str,
        traced: bool,
    ) -> Option<EngineRun> {
        let graph = JoinGraph::build(snap);
        let root = bind_root(&graph, query.root.as_deref(), &query.referenced_tables()).ok()?;
        let entry = self.denorm_cache.get_or_build(snap, &root).ok()?;
        if !query_rewritable(&entry.denorm, query, &root) {
            self.router.set_denorm_rewritable(key, false);
            return None;
        }
        self.router.set_denorm_rewritable(key, true);
        let wide = entry.denorm.rewrite(query, &root);
        let exec_opts = ExecOptions { threads: 1, ..self.opts.clone() };
        let out = execute(&entry.denorm.db, &wide, &exec_opts).ok()?;
        let lines = if traced {
            vec![format!(
                "engine: denorm  wide={} wide_rows={} segments_scanned={}",
                entry.denorm.wide_name,
                entry.denorm.table().num_live(),
                out.plan.segments_scanned
            )]
        } else {
            Vec::new()
        };
        Some(EngineRun::Other { result: out.result, lines })
    }

    /// Bare `EXPLAIN <select>`: plans the statement and previews the
    /// router's verdict — engine, reason, the static feature vector, the
    /// per-arm latency history and regret-to-date — without executing
    /// anything or perturbing the learned state ([`Router::peek`]).
    fn run_explain(&self, sql: &str, pin: Option<EngineChoice>) -> Result<Json, Json> {
        let mut tmpl =
            parse_template(sql).map_err(|e| error_frame(ErrorCode::ParseError, e.to_string()))?;
        let explicit_params = tmpl.param_count() > 0;
        let inline = extract_select_params(&mut tmpl);
        if !tmpl.is_select() {
            return Err(error_frame(
                ErrorCode::PlanError,
                "EXPLAIN supports SELECT statements only",
            ));
        }
        let key = canonicalize(&mut tmpl);
        let snap = self.db.snapshot();
        let (prepared, cached) = self.cached_plan(key.clone(), tmpl, &snap)?;
        let bind_code = if explicit_params { ErrorCode::ParamError } else { ErrorCode::PlanError };
        let query =
            match prepared.bind(&inline).map_err(|e| error_frame(bind_code, e.to_string()))? {
                BoundStatement::Select(q) => q,
                BoundStatement::Write(_) => {
                    return Err(error_frame(ErrorCode::BadRequest, "statement is not a SELECT"))
                }
            };
        let features = Features::extract(&snap, &query);
        let eligible = self.engine_eligibility(&snap, &query, &key);
        let decision = self.router.peek(&key, eligible, pin);
        let (top_name, top_value) = features.top_feature();
        let eligible_list = EngineChoice::ALL
            .into_iter()
            .filter(|e| eligible[e.index()])
            .map(EngineChoice::as_str)
            .collect::<Vec<_>>()
            .join(",");
        let mut lines = vec![
            format!("engine: {} ({})", decision.choice.as_str(), decision.reason.as_str()),
            format!("template: {key}"),
            format!(
                "features: fact_rows_live={} segments={}/{} group_domain={} selectivity={:.4}",
                features.fact_rows_live,
                features.segments_surviving,
                features.segments_total,
                features.group_domain,
                features.selectivity
            ),
            format!("top_feature: {top_name}={top_value:.4}"),
            format!("eligible: {eligible_list}"),
        ];
        if let Some(ts) = self.router.template_snapshot(&key) {
            for e in EngineChoice::ALL {
                let (tries, ewma) = ts.arms[e.index()];
                lines.push(format!("arm: {} tries={tries} ewma_us={ewma:.0}", e.as_str()));
            }
            lines.push(format!("regret_us: {:.0}", ts.regret_us));
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("engine", Json::Str(decision.choice.as_str().to_owned())),
            ("reason", Json::Str(decision.reason.as_str().to_owned())),
            ("top_feature", Json::Str(top_name.to_owned())),
            ("cached_plan", Json::Bool(cached)),
            ("explain", Json::Array(lines.into_iter().map(Json::Str).collect())),
        ]))
    }

    /// Commits one concrete write statement through the group-commit
    /// pipeline. `wal_sql` is the text the write-ahead log records — always
    /// the canonical rendering ([`Statement::to_sql`]) of the statement
    /// being applied, never the client's raw text, so replay (which parses
    /// the log verbatim) sees exactly the statement that mutated memory.
    ///
    /// The statement is staged; the first stager becomes the batch leader
    /// and commits everything staged so far as one batch (see
    /// [`Engine::commit_batch`]), everyone else parks on their slot until
    /// the leader posts their result. Either way the statement is on disk
    /// before the acknowledgment frame can be sent.
    fn exec_write(&self, write_stmt: &Statement, wal_sql: &str) -> Result<Json, Json> {
        let slot = Arc::new(WriteSlot::default());
        let lead = {
            let mut st = self.commit.lock().unwrap_or_else(|p| p.into_inner());
            st.pending.push(PendingWrite {
                stmt: write_stmt.clone(),
                wal_sql: wal_sql.to_owned(),
                slot: Arc::clone(&slot),
            });
            !std::mem::replace(&mut st.leader_active, true)
        };
        if lead {
            self.lead_commits();
        }
        let affected = slot.wait()?;
        self.maybe_auto_checkpoint();
        Ok(Json::obj([("ok", Json::Bool(true)), ("rows_affected", Json::Int(affected as i64))]))
    }

    /// The leader loop: drain the staging queue and commit each drained
    /// batch, until a drain comes up empty. Stepping down happens under the
    /// staging mutex in the same critical section as the emptiness check,
    /// so a write staged concurrently either joined a drained batch or sees
    /// `leader_active == false` and elects itself.
    fn lead_commits(&self) {
        let _publish = self.commit_lock.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            let batch = {
                let mut st = self.commit.lock().unwrap_or_else(|p| p.into_inner());
                if st.pending.is_empty() {
                    st.leader_active = false;
                    return;
                }
                std::mem::take(&mut st.pending)
            };
            self.commit_batch(batch);
        }
    }

    /// Commits one batch. Caller holds `commit_lock`, so the snapshot taken
    /// here is the latest published image and nobody else can publish
    /// until this batch lands.
    ///
    /// Per-statement conflict detection: each statement validates against
    /// the batch-in-progress image (earlier batchmates' effects included);
    /// a failure bounces that statement alone with a `write_error` — its
    /// batchmates commit. After validation the apply cannot fail, so the
    /// one WAL append (one fsync for the whole batch, LSNs assigned in
    /// apply order) is the commit point: if it errors, every applied
    /// statement is thrown away with the private clone and memory, log and
    /// clients all agree the batch never happened.
    fn commit_batch(&self, batch: Vec<PendingWrite>) {
        use std::sync::atomic::Ordering::Relaxed;
        let base = self.db.snapshot();
        let mut work = (*base).clone();
        drop(base);
        let mut applied: Vec<(Arc<WriteSlot>, usize)> = Vec::with_capacity(batch.len());
        let mut sqls: Vec<String> = Vec::with_capacity(batch.len());
        for pw in batch {
            match validate_statement(&work, &pw.stmt) {
                Ok(()) => {
                    let n =
                        apply_statement(&mut work, &pw.stmt).expect("validated statement applies");
                    sqls.push(pw.wal_sql);
                    applied.push((pw.slot, n));
                }
                Err(msg) => pw.slot.finish(Err(error_frame(ErrorCode::WriteError, msg))),
            }
        }
        if applied.is_empty() {
            return;
        }
        if let Some(d) = &self.durability {
            let mut wal = d.wal.lock().unwrap_or_else(|p| p.into_inner());
            if let Err(e) = wal.append_batch(&sqls) {
                let frame = error_frame(
                    ErrorCode::InternalError,
                    format!("WAL append failed, write aborted: {e}"),
                );
                for (slot, _) in applied {
                    slot.finish(Err(frame.clone()));
                }
                return;
            }
        }
        work.bump_version();
        self.db.replace(Arc::new(work));
        {
            let _group = self.stats.group.begin_write();
            self.stats.writes.fetch_add(applied.len() as u64, Relaxed);
            if self.durability.is_some() {
                self.stats.wal_records.fetch_add(sqls.len() as u64, Relaxed);
            }
            self.stats.group_commits.fetch_add(1, Relaxed);
        }
        for (slot, n) in applied {
            slot.finish(Ok(n));
        }
    }

    /// One background-compaction pass: find up to a handful of sealed
    /// segments whose encodings have gone stale (write-throughs) or short
    /// (appends), re-encode them against a COW snapshot with no locks
    /// held, and install the results under the commit lock. The per-segment
    /// epoch fence makes a stale install a no-op: if a write slipped in
    /// after the snapshot, [`astore_storage::table::Table::install_compacted`]
    /// refuses and the segment is picked up again next pass. Returns the
    /// number of segments installed.
    pub fn run_compaction_pass(&self) -> usize {
        const MAX_SEGMENTS_PER_PASS: usize = 8;
        let snap = self.db.snapshot();
        let mut encoded = Vec::new();
        'scan: for name in snap.table_names() {
            let Some(t) = snap.table(name) else { continue };
            for seg in 0..t.segment_count() {
                if t.segment_needs_reseal(seg) {
                    // The heavy part, off every lock: readers and writers
                    // proceed while this encodes.
                    let enc = t.encode_segment_now(seg);
                    encoded.push((name.clone(), seg, t.segment_epoch(seg), enc));
                    if encoded.len() >= MAX_SEGMENTS_PER_PASS {
                        break 'scan;
                    }
                }
            }
        }
        drop(snap);
        if encoded.is_empty() {
            return 0;
        }
        let mut installed = 0usize;
        {
            let _publish = self.commit_lock.lock().unwrap_or_else(|p| p.into_inner());
            self.db.write(|db| {
                for (name, seg, epoch, enc) in encoded {
                    // In place only: a table still shared with an in-flight
                    // reader skips this pass rather than deep-clone.
                    if let Some(t) = db.table_mut_in_place(&name) {
                        if t.install_compacted(seg, enc, epoch) {
                            installed += 1;
                        }
                    }
                }
            });
        }
        if installed > 0 {
            self.stats
                .compactions
                .fetch_add(installed as u64, std::sync::atomic::Ordering::Relaxed);
            self.gauge_footprint();
        }
        installed
    }
}

/// One engine arm's execution output: the AIR path keeps its full
/// [`ExecOutput`] (plan diagnostics + trace-renderable spans); the join and
/// denorm arms produce bare rows plus pre-rendered analyze lines.
enum EngineRun {
    /// The AIR scan ran, under a fan-out request of `want` threads.
    Air { out: ExecOutput, want: usize },
    /// A non-AIR arm ran.
    Other { result: QueryResult, lines: Vec<String> },
}

/// Recognizes `SET engine = air|join|denorm|auto` (case-insensitive,
/// `=` optional, trailing `;` tolerated). `None` = not a SET-engine
/// statement; `Some(Err)` = it is one, with a bad value.
fn parse_set_engine(sql: &str) -> Option<Result<Option<EngineChoice>, String>> {
    let s = sql.trim().trim_end_matches(';').trim();
    let mut words = s.split_whitespace();
    if !words.next()?.eq_ignore_ascii_case("set") {
        return None;
    }
    let rest = words.collect::<Vec<_>>().join(" ");
    let lower = rest.to_ascii_lowercase();
    let after = lower.strip_prefix("engine")?;
    let value = after.trim_start().trim_start_matches('=').trim();
    if value.is_empty() {
        return Some(Err("SET engine takes a value: air|join|denorm|auto".to_owned()));
    }
    Some(EngineChoice::parse(value))
}

/// Converts one wire parameter to a storage value. Booleans and nested
/// structures have no column type to land in.
fn json_to_param(j: &Json) -> Result<Value, String> {
    match j {
        Json::Int(x) => Ok(Value::Int(*x)),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::Null => Ok(Value::Null),
        other => Err(format!("parameter {other} is not a scalar (int, float, string or null)")),
    }
}

/// The planner's scan-size estimate for the core budget: the largest table
/// the query references (the fact table dominates a star query). An
/// explicit root is trusted outright; a query referencing no known table
/// estimates 0 and stays serial.
fn estimated_scan_rows(db: &astore_storage::catalog::Database, query: &Query) -> usize {
    if let Some(root) = &query.root {
        return db.table(root).map(|t| t.num_slots()).unwrap_or(0);
    }
    query
        .referenced_tables()
        .iter()
        .filter_map(|t| db.table(t))
        .map(|t| t.num_slots())
        .max()
        .unwrap_or(0)
}

/// Converts a storage value into its wire representation.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(x) => Json::Int(*x),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.clone()),
        Value::Key(k) => Json::Int(i64::from(*k)),
        Value::Null => Json::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::catalog::Database;
    use astore_storage::segment::SEGMENT_ROWS;
    use astore_storage::snapshot::SharedDatabase;
    use astore_storage::table::{ColumnDef, Schema, Table};
    use astore_storage::types::DataType;

    fn engine() -> Engine {
        let mut dim = Table::new(
            "dim",
            Schema::new(vec![
                ColumnDef::new("d_name", DataType::Dict),
                ColumnDef::new("d_rank", DataType::I32),
            ]),
        );
        dim.append_row(&[Value::Str("alpha".into()), Value::Int(1)]);
        dim.append_row(&[Value::Str("beta".into()), Value::Int(2)]);
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_v", DataType::I64),
            ]),
        );
        fact.append_row(&[Value::Key(0), Value::Int(10)]);
        fact.append_row(&[Value::Key(1), Value::Int(20)]);
        fact.append_row(&[Value::Key(0), Value::Int(30)]);
        let mut db = Database::new();
        db.add_table(dim);
        db.add_table(fact);
        Engine::new(SharedDatabase::new(db))
    }

    fn sql(e: &Engine, s: &str) -> Json {
        e.handle_line(&Json::obj([("sql", Json::Str(s.into()))]).to_string())
    }

    #[test]
    fn select_roundtrip_with_plan_cache() {
        let e = engine();
        let q = "SELECT d_name, sum(f_v) AS total FROM fact, dim GROUP BY d_name ORDER BY d_name";
        let r1 = sql(&e, q);
        assert_eq!(r1.get("ok").unwrap().as_bool(), Some(true), "{r1:?}");
        assert_eq!(r1.get("cached_plan").unwrap().as_bool(), Some(false));
        assert_eq!(r1.get("row_count").unwrap().as_i64(), Some(2));
        let rows = r1.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[1].as_i64(), Some(40));
        // Different formatting, same normalized key → cache hit.
        let r2 = sql(
            &e,
            "select   d_name, SUM(f_v) as total from fact, dim group by d_name order by d_name;",
        );
        assert_eq!(r2.get("cached_plan").unwrap().as_bool(), Some(true));
        assert_eq!(r1.get("rows"), r2.get("rows"));
        assert_eq!(e.cache().hits(), 1);
        assert!(r2.get("elapsed_us").unwrap().as_i64().is_some());
    }

    #[test]
    fn uppercase_identifiers_behave_the_same_cold_and_warm() {
        // Plans are built from the canonical (identifier-case-folded)
        // template, so a spelling's fate cannot depend on what another
        // session cached. Aliases keep their case — they name the output.
        let e = engine();
        let cold = sql(&e, "SELECT COUNT(*) AS n FROM FACT");
        assert_eq!(cold.get("ok").unwrap().as_bool(), Some(true), "{cold:?}");
        let warm = sql(&e, "select count(*) as n from fact");
        assert_eq!(warm.get("cached_plan").unwrap().as_bool(), Some(true));
        assert_eq!(cold.get("rows"), warm.get("rows"));
        assert_eq!(cold.get("columns"), warm.get("columns"));
        // A different alias case is a different output shape — its own
        // template, its own column name.
        let other = sql(&e, "select count(*) as N from fact");
        assert_eq!(other.get("cached_plan").unwrap().as_bool(), Some(false));
        assert_eq!(other.get("columns").unwrap().as_array().unwrap()[0].as_str(), Some("N"));
    }

    #[test]
    fn writes_apply_and_are_visible() {
        let e = engine();
        let r = sql(&e, "INSERT INTO fact VALUES (1, 100), (0, 5)");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(r.get("rows_affected").unwrap().as_i64(), Some(2));
        let r = sql(&e, "UPDATE fact SET f_v = 11 WHERE rowid = 0");
        assert_eq!(r.get("rows_affected").unwrap().as_i64(), Some(1));
        let r = sql(&e, "DELETE FROM fact WHERE rowid = 1");
        assert_eq!(r.get("rows_affected").unwrap().as_i64(), Some(1));
        let r = sql(&e, "SELECT sum(f_v) AS s FROM fact");
        // 11 + 30 + 100 + 5 (row 1 deleted)
        let rows = r.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[0].as_i64(), Some(146));
    }

    #[test]
    fn write_validation_rejects_without_mutating() {
        let e = engine();
        for bad in [
            "INSERT INTO nope VALUES (1)",
            "INSERT INTO fact VALUES (1)",               // arity
            "INSERT INTO fact VALUES (1, 'str')",        // type
            "INSERT INTO fact VALUES (9, 1)",            // dangling key
            "INSERT INTO fact VALUES (0, 1), (0, NULL)", // later row invalid → whole stmt rejected
            "UPDATE fact SET nope = 1 WHERE rowid = 0",
            "UPDATE fact SET f_v = 1 WHERE rowid = 99",
        ] {
            let r = sql(&e, bad);
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(false), "{bad}");
            assert_eq!(r.get("code").unwrap().as_str(), Some("write_error"), "{bad}");
        }
        let r = sql(&e, "SELECT count(*) AS n FROM fact");
        let rows = r.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[0].as_i64(), Some(3), "no partial writes");
    }

    #[test]
    fn delete_from_air_referenced_table_is_rejected() {
        let e = engine();
        // `dim` is the target of fact.f_dim: deleting from it would let a
        // later INSERT recycle the slot under live references.
        let r = sql(&e, "DELETE FROM dim WHERE rowid = 0");
        assert_eq!(r.get("code").unwrap().as_str(), Some("write_error"), "{r:?}");
        assert!(r.get("error").unwrap().as_str().unwrap().contains("referenced"), "{r:?}");
        // The fact side (nothing references it) still supports deletes.
        let r = sql(&e, "DELETE FROM fact WHERE rowid = 2");
        assert_eq!(r.get("rows_affected").unwrap().as_i64(), Some(1), "{r:?}");
    }

    #[test]
    fn error_frames_are_typed() {
        let e = engine();
        let r = e.handle_line("this is not json");
        assert_eq!(r.get("code").unwrap().as_str(), Some("bad_request"));
        let r = e.handle_line(r#"{"other":1}"#);
        assert_eq!(r.get("code").unwrap().as_str(), Some("bad_request"));
        let r = sql(&e, "SELEKT 1");
        assert_eq!(r.get("code").unwrap().as_str(), Some("parse_error"));
        let r = sql(&e, "SELECT nope FROM fact");
        assert_eq!(r.get("code").unwrap().as_str(), Some("plan_error"));
        assert_eq!(e.stats().errors.load(std::sync::atomic::Ordering::Relaxed), 4);
    }

    #[test]
    fn stats_cmd_reports_counters() {
        let e = engine();
        sql(&e, "SELECT count(*) AS n FROM fact");
        sql(&e, "INSERT INTO fact VALUES (0, 1)");
        let r = e.handle_line(r#"{"cmd":"stats"}"#);
        let s = r.get("stats").unwrap();
        assert_eq!(s.get("queries").unwrap().as_i64(), Some(1));
        assert_eq!(s.get("writes").unwrap().as_i64(), Some(1));
        assert_eq!(s.get("latency_count").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn boot_seal_primes_footprint_gauges() {
        // big_db spans two full segments; with_options seals them at boot,
        // so the footprint gauges report a real (and compressed) residency.
        let e = Engine::new(SharedDatabase::new(big_db()));
        let r = e.handle_line(r#"{"cmd":"stats"}"#);
        let s = r.get("stats").unwrap();
        let enc = s.get("encoded_bytes").unwrap().as_i64().unwrap();
        let raw = s.get("raw_bytes").unwrap().as_i64().unwrap();
        assert!(enc > 0, "boot seal produced no encoded segments");
        assert!(enc < raw, "encoded footprint should beat raw: {enc} vs {raw}");
        // Query results are unaffected by the sealed representation.
        let r = sql(&e, "SELECT count(*) AS n FROM fact");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
    }

    #[test]
    fn durable_engine_logs_checkpoints_and_recovers() {
        let dir = std::env::temp_dir().join(format!("astore-engine-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Build the same schema the `engine()` helper uses, durably.
        let seed = {
            let e = engine();
            e.database().snapshot().as_ref().clone()
        };
        let wal = astore_persist::store::bootstrap(&dir, &seed).unwrap();
        let e = Engine::new(SharedDatabase::new(seed)).durable(Durability::new(&dir, wal, 0));

        let r = sql(&e, "INSERT INTO fact VALUES (1, 100), (0, 5)");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        let r = sql(&e, "UPDATE fact SET f_v = 11 WHERE rowid = 0");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        // Rejected writes must not reach the log.
        let r = sql(&e, "INSERT INTO fact VALUES (9, 1)");
        assert_eq!(r.get("code").unwrap().as_str(), Some("write_error"));

        // Crash-equivalent: drop the engine without checkpointing, recover.
        let live_sum = {
            let r = sql(&e, "SELECT sum(f_v) AS s FROM fact");
            r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0].as_i64().unwrap()
        };
        drop(e);
        let rec = astore_persist::store::open(&dir).unwrap();
        assert_eq!(rec.replayed, 2, "two committed writes replay");
        let e2 =
            Engine::new(SharedDatabase::new(rec.db)).durable(Durability::new(&dir, rec.wal, 0));
        let r = sql(&e2, "SELECT sum(f_v) AS s FROM fact");
        let sum2 =
            r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0].as_i64().unwrap();
        assert_eq!(sum2, live_sum, "recovered state equals pre-crash state");

        // Checkpoint folds the WAL; a fresh recovery replays nothing.
        let r = e2.handle_line(r#"{"cmd":"checkpoint"}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert!(r.get("snapshot_bytes").unwrap().as_i64().unwrap() > 0);
        drop(e2);
        let rec = astore_persist::store::open(&dir).unwrap();
        assert_eq!(rec.replayed, 0, "post-checkpoint WAL is empty");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_case_text_write_replays_from_wal() {
        // Text writes are case-folded before apply (`INSERT INTO FACT`
        // mutates table `fact`), but WAL replay parses the log verbatim —
        // so the log must store the canonical rendering, never the raw
        // client text, or a committed write becomes unrecoverable.
        let dir = std::env::temp_dir().join(format!("astore-engine-case-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed = {
            let e = engine();
            e.database().snapshot().as_ref().clone()
        };
        let wal = astore_persist::store::bootstrap(&dir, &seed).unwrap();
        let e = Engine::new(SharedDatabase::new(seed)).durable(Durability::new(&dir, wal, 0));
        let r = sql(&e, "INSERT INTO FACT VALUES (1, 100)");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        let r = sql(&e, "UPDATE Fact SET F_V = 11 WHERE ROWID = 0");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        let live_sum = {
            let r = sql(&e, "SELECT sum(f_v) AS s FROM fact");
            r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0].as_i64().unwrap()
        };
        drop(e);
        let rec = astore_persist::store::open(&dir).unwrap();
        assert_eq!(rec.replayed, 2, "mixed-case committed writes replay");
        let e2 =
            Engine::new(SharedDatabase::new(rec.db)).durable(Durability::new(&dir, rec.wal, 0));
        let r = sql(&e2, "SELECT sum(f_v) AS s FROM fact");
        let sum2 =
            r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0].as_i64().unwrap();
        assert_eq!(sum2, live_sum, "recovered state equals pre-crash state");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_without_data_dir_is_a_typed_error() {
        let e = engine();
        let r = e.handle_line(r#"{"cmd":"checkpoint"}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(r.get("code").unwrap().as_str(), Some("bad_request"));
        assert!(r.get("error").unwrap().as_str().unwrap().contains("--data-dir"));
    }

    #[test]
    fn auto_checkpoint_fires_on_record_threshold() {
        let dir = std::env::temp_dir().join(format!("astore-engine-auto-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed = {
            let e = engine();
            e.database().snapshot().as_ref().clone()
        };
        let wal = astore_persist::store::bootstrap(&dir, &seed).unwrap();
        let e = Engine::new(SharedDatabase::new(seed)).durable(Durability::new(&dir, wal, 3));
        for _ in 0..3 {
            let r = sql(&e, "INSERT INTO fact VALUES (0, 1)");
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        }
        assert_eq!(
            e.stats().checkpoints.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "third write crosses the threshold"
        );
        drop(e);
        let rec = astore_persist::store::open(&dir).unwrap();
        assert_eq!(rec.replayed, 0, "everything folded into the snapshot");
        assert_eq!(rec.db.table("fact").unwrap().num_live(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A star schema with a fact table big enough (two full segments) that
    /// the default planner wants to fan out.
    fn big_db() -> Database {
        let mut dim =
            Table::new("dim", Schema::new(vec![ColumnDef::new("d_name", DataType::Dict)]));
        for i in 0..16 {
            dim.append_row(&[Value::Str(format!("d{i}"))]);
        }
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_v", DataType::I64),
            ]),
        );
        for i in 0..(2 * SEGMENT_ROWS as u32) {
            fact.append_row(&[Value::Key(i % 16), Value::Int(i as i64)]);
        }
        let mut db = Database::new();
        db.add_table(dim);
        db.add_table(fact);
        db
    }

    /// Fan-out options pinned to a 64-thread virtual host so the planner's
    /// physical-core clamp never turns these tests serial on small CI boxes.
    fn fan_out_opts(threads: usize) -> ExecOptions {
        let mut o = ExecOptions::default().threads(threads);
        o.optimizer.host_threads = 64;
        o
    }

    #[test]
    fn big_scans_fan_out_under_the_core_budget() {
        let e = Engine::with_options(SharedDatabase::new(big_db()), fan_out_opts(4)).core_budget(4);
        let serial_ref = Engine::new(SharedDatabase::new(big_db()));
        let q = "SELECT d_name, sum(f_v) AS s FROM fact, dim GROUP BY d_name ORDER BY d_name";
        let par = sql(&e, q);
        assert_eq!(par.get("ok").unwrap().as_bool(), Some(true), "{par:?}");
        assert_eq!(par.get("rows"), sql(&serial_ref, q).get("rows"), "parallel == serial");
        let stats = e.stats();
        assert_eq!(stats.parallel_queries.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(stats.parallel_denied.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert_eq!(e.budget().in_use(), 0, "permits returned after the query");
    }

    #[test]
    fn exhausted_budget_degrades_to_serial_and_counts_it() {
        // Budget of 1: the statement's own baseline permit consumes it, so
        // no extra engine threads can ever be granted.
        let e = Engine::with_options(SharedDatabase::new(big_db()), fan_out_opts(4)).core_budget(1);
        let r = sql(&e, "SELECT sum(f_v) AS s FROM fact");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        let stats = e.stats();
        assert_eq!(stats.parallel_queries.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert_eq!(stats.parallel_denied.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn small_scans_never_ask_for_extra_permits() {
        // The tiny fixture stays under the planner threshold: no fan-out
        // request is ever made, so nothing is counted as denied either.
        let e = Engine::with_options(
            SharedDatabase::new({
                let base = engine();
                let db = base.database().snapshot().as_ref().clone();
                db
            }),
            ExecOptions::default().threads(8),
        )
        .core_budget(8);
        let r = sql(&e, "SELECT sum(f_v) AS s FROM fact");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        let stats = e.stats();
        assert_eq!(stats.parallel_queries.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert_eq!(stats.parallel_denied.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert_eq!(e.budget().denied(), 0);
    }

    #[test]
    fn stats_cmd_reports_core_budget_gauges() {
        let e =
            Engine::with_options(SharedDatabase::new(big_db()), ExecOptions::default().threads(2))
                .core_budget(6);
        let r = e.handle_line(r#"{"cmd":"stats"}"#);
        let s = r.get("stats").unwrap();
        assert_eq!(s.get("engine_threads").unwrap().as_i64(), Some(2));
        assert_eq!(s.get("core_budget_total").unwrap().as_i64(), Some(6));
        assert_eq!(s.get("core_budget_in_use").unwrap().as_i64(), Some(0));
        assert_eq!(s.get("parallel_queries").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn literal_variants_share_one_plan_cache_entry() {
        // Auto-parameterization: the same query shape with different
        // predicate literals is ONE template — the second spelling is a
        // cache hit, not a new plan.
        let e = engine();
        let r1 = sql(&e, "SELECT count(*) AS n FROM fact WHERE f_v >= 10");
        assert_eq!(r1.get("cached_plan").unwrap().as_bool(), Some(false));
        let r2 = sql(&e, "SELECT count(*) AS n FROM fact WHERE f_v >= 25");
        assert_eq!(r2.get("cached_plan").unwrap().as_bool(), Some(true), "{r2:?}");
        assert_eq!(e.cache().len(), 1, "one template entry for both literals");
        // And the results still reflect each literal.
        let n = |r: &Json| {
            r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0].as_i64().unwrap()
        };
        assert_eq!(n(&r1), 3);
        assert_eq!(n(&r2), 1);
    }

    #[test]
    fn prepare_execute_close_roundtrip() {
        let e = engine();
        let mut session = StatementRegistry::default();
        let r = e.handle_line_session(
            r#"{"prepare":"SELECT d_name, sum(f_v) AS total FROM fact, dim WHERE d_rank >= ? GROUP BY d_name ORDER BY d_name"}"#,
            &mut session,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        let id = r.get("stmt_id").unwrap().as_i64().unwrap();
        assert_eq!(r.get("param_count").unwrap().as_i64(), Some(1));
        assert_eq!(r.get("kind").unwrap().as_str(), Some("select"));
        assert_eq!(r.get("columns").unwrap().as_array().unwrap()[0].as_str(), Some("d_name"));

        let r = e.handle_line_session(
            &format!(r#"{{"execute":{{"id":{id},"params":[2]}}}}"#),
            &mut session,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(r.get("row_count").unwrap().as_i64(), Some(1), "only beta has rank >= 2");
        assert!(r.get("elapsed_us").is_some());

        // Re-execute with a different binding: no re-prepare needed.
        let r = e.handle_line_session(
            &format!(r#"{{"execute":{{"id":{id},"params":[1]}}}}"#),
            &mut session,
        );
        assert_eq!(r.get("row_count").unwrap().as_i64(), Some(2));

        let r = e.handle_line_session(&format!(r#"{{"close":{id}}}"#), &mut session);
        assert_eq!(r.get("closed").unwrap().as_bool(), Some(true));
        let r = e.handle_line_session(
            &format!(r#"{{"execute":{{"id":{id},"params":[1]}}}}"#),
            &mut session,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("unknown_statement"), "{r:?}");
        assert_eq!(
            e.stats().prepared_execs.load(std::sync::atomic::Ordering::Relaxed),
            2,
            "executes of unknown ids fail before the counter"
        );
    }

    #[test]
    fn prepared_writes_execute_and_are_durable_in_memory() {
        let e = engine();
        let mut session = StatementRegistry::default();
        let r =
            e.handle_line_session(r#"{"prepare":"INSERT INTO fact VALUES (?, ?)"}"#, &mut session);
        assert_eq!(r.get("kind").unwrap().as_str(), Some("write"), "{r:?}");
        let id = r.get("stmt_id").unwrap().as_i64().unwrap();
        let r = e.handle_line_session(
            &format!(r#"{{"execute":{{"id":{id},"params":[1, 100]}}}}"#),
            &mut session,
        );
        assert_eq!(r.get("rows_affected").unwrap().as_i64(), Some(1), "{r:?}");
        // A dangling key binds fine (it's an int) but fails validation.
        let r = e.handle_line_session(
            &format!(r#"{{"execute":{{"id":{id},"params":[9, 1]}}}}"#),
            &mut session,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("write_error"), "{r:?}");
        let r = sql(&e, "SELECT sum(f_v) AS s FROM fact");
        let rows = r.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[0].as_i64(), Some(160));
    }

    #[test]
    fn execute_param_errors_are_typed() {
        let e = engine();
        let mut session = StatementRegistry::default();
        let r = e.handle_line_session(
            r#"{"prepare":"SELECT count(*) AS n FROM fact, dim WHERE d_name = ?"}"#,
            &mut session,
        );
        let id = r.get("stmt_id").unwrap().as_i64().unwrap();
        // Wrong count.
        let r = e.handle_line_session(
            &format!(r#"{{"execute":{{"id":{id},"params":[]}}}}"#),
            &mut session,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("param_error"), "{r:?}");
        // Wrong kind.
        let r = e.handle_line_session(
            &format!(r#"{{"execute":{{"id":{id},"params":[5]}}}}"#),
            &mut session,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("param_error"), "{r:?}");
        // Non-scalar parameter.
        let r = e.handle_line_session(
            &format!(r#"{{"execute":{{"id":{id},"params":[[1]]}}}}"#),
            &mut session,
        );
        assert_eq!(r.get("code").unwrap().as_str(), Some("param_error"), "{r:?}");
        // Correct bind still works afterwards.
        let r = e.handle_line_session(
            &format!(r#"{{"execute":{{"id":{id},"params":["alpha"]}}}}"#),
            &mut session,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
    }

    #[test]
    fn registry_eviction_is_bounded_and_typed() {
        let e = engine();
        let mut session = StatementRegistry::with_capacity(2);
        let mut ids = Vec::new();
        for _ in 0..3 {
            let r = e.handle_line_session(
                r#"{"prepare":"SELECT count(*) AS n FROM fact"}"#,
                &mut session,
            );
            ids.push(r.get("stmt_id").unwrap().as_i64().unwrap());
        }
        assert_eq!(session.len(), 2, "capacity enforced");
        let r =
            e.handle_line_session(&format!(r#"{{"execute":{{"id":{}}}}}"#, ids[0]), &mut session);
        assert_eq!(r.get("code").unwrap().as_str(), Some("unknown_statement"), "{r:?}");
        let r =
            e.handle_line_session(&format!(r#"{{"execute":{{"id":{}}}}}"#, ids[2]), &mut session);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
    }

    #[test]
    fn literal_bearing_prepares_do_not_pollute_the_plan_cache() {
        // A client preparing fresh literal SQL per request must not evict
        // the shared parameterized templates: such statements live only in
        // its session registry.
        let e = engine();
        let mut session = StatementRegistry::default();
        for v in [10, 20, 30] {
            let r = e.handle_line_session(
                &format!(r#"{{"prepare":"SELECT count(*) AS n FROM fact WHERE f_v >= {v}"}}"#),
                &mut session,
            );
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
            let id = r.get("stmt_id").unwrap().as_i64().unwrap();
            let r = e.handle_line_session(&format!(r#"{{"execute":{{"id":{id}}}}}"#), &mut session);
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        }
        assert_eq!(e.cache().len(), 0, "literal-bearing prepares are not shared-cached");
        // Fully parameterized prepares still are.
        let r = e.handle_line_session(
            r#"{"prepare":"SELECT count(*) AS n FROM fact WHERE f_v >= ?"}"#,
            &mut session,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(e.cache().len(), 1);
    }

    #[test]
    fn text_and_prepared_share_the_plan_cache() {
        // A prepared `f_v >= ?` and a literal-SQL `f_v >= 10` canonicalize
        // to the same template: the second one is a cache hit.
        let e = engine();
        let mut session = StatementRegistry::default();
        let r = e.handle_line_session(
            r#"{"prepare":"SELECT count(*) AS n FROM fact WHERE f_v >= ?"}"#,
            &mut session,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(e.cache().len(), 1);
        let r = sql(&e, "SELECT count(*) AS n FROM fact WHERE f_v >= 10");
        assert_eq!(r.get("cached_plan").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(e.cache().len(), 1, "still one entry");
    }

    #[test]
    fn explain_analyze_reports_plan_and_spans() {
        let e = engine();
        let r = sql(
            &e,
            "EXPLAIN ANALYZE SELECT d_name, sum(f_v) AS total FROM fact, dim GROUP BY d_name",
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(r.get("row_count").unwrap().as_i64(), Some(2), "the query still runs");
        let lines: Vec<String> = r
            .get("analyze")
            .expect("analyze member")
            .as_array()
            .unwrap()
            .iter()
            .map(|l| l.as_str().unwrap().to_owned())
            .collect();
        let joined = lines.join("\n");
        assert!(joined.contains("root:"), "{joined}");
        assert!(joined.contains("phases:"), "{joined}");
        assert!(joined.contains("segments:"), "{joined}");
        assert!(joined.contains("execute"), "{joined}");
        assert!(joined.contains("phase2_scan"), "{joined}");
        // Case-insensitive prefix; writes are rejected with a typed error.
        let r = sql(&e, "explain analyze select count(*) as n from fact");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        let r = sql(&e, "EXPLAIN ANALYZE INSERT INTO fact VALUES (0, 1)");
        assert_eq!(r.get("code").unwrap().as_str(), Some("plan_error"), "{r:?}");
    }

    #[test]
    fn metrics_cmd_returns_prometheus_text() {
        let e = engine();
        sql(&e, "SELECT count(*) AS n FROM fact");
        sql(&e, "SELECT count(*) AS n FROM fact WHERE f_v >= 10");
        let r = e.handle_line(r#"{"cmd":"metrics"}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        let body = r.get("metrics").unwrap().as_str().unwrap();
        assert!(body.contains("astore_server_queries_total 2\n"), "{body}");
        assert!(body.contains("# TYPE astore_server_latency_us histogram\n"));
        assert!(body.contains("astore_server_template_latency_us_bucket{template="), "{body}");
        assert!(body.contains("le=\"+Inf\""));
        assert!(body.contains("astore_server_core_budget_total"));
        // Two distinct canonical templates → two labeled series.
        assert_eq!(e.templates().len(), 2);
    }

    #[test]
    fn slowlog_captures_only_past_threshold() {
        let e = engine(); // threshold 0: capture off
        sql(&e, "SELECT count(*) AS n FROM fact");
        let r = e.handle_line(r#"{"cmd":"slowlog"}"#);
        let log = r.get("slowlog").unwrap();
        assert_eq!(log.get("threshold_ms").unwrap().as_i64(), Some(0));
        assert_eq!(log.get("entries").unwrap().as_array().unwrap().len(), 0);
        // Threshold 0ms→every statement qualifies once enabled at 0? No:
        // 0 disables. Re-arm via the slowlog handle directly (the --slow-ms
        // path) with a 0µs-reachable 1ms... use the setter + a synthetic
        // observation instead of relying on wall-clock latency.
        e.slowlog().set_threshold_ms(1);
        e.slowlog().observe("SELECT count(*) FROM fact", 5_000);
        let r = e.handle_line(r#"{"cmd":"slowlog"}"#);
        let entries = r.get("slowlog").unwrap().get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("elapsed_us").unwrap().as_i64(), Some(5000));
        assert!(entries[0].get("ago_s").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn stats_cmd_reports_per_template_histograms() {
        let e = engine();
        sql(&e, "SELECT count(*) AS n FROM fact WHERE f_v >= 10");
        sql(&e, "SELECT count(*) AS n FROM fact WHERE f_v >= 25"); // same template
        sql(&e, "SELECT sum(f_v) AS s FROM fact"); // different template
        let r = e.handle_line(r#"{"cmd":"stats"}"#);
        let templates = r.get("stats").unwrap().get("templates").unwrap().as_array().unwrap();
        assert_eq!(templates.len(), 2, "{templates:?}");
        let counts: Vec<i64> =
            templates.iter().map(|t| t.get("count").unwrap().as_i64().unwrap()).collect();
        assert_eq!(counts.iter().sum::<i64>(), 3);
        assert!(counts.contains(&2), "literal variants share one series: {counts:?}");
        for t in templates {
            assert!(t.get("p50_us").is_some() && t.get("p99_us").is_some(), "{t:?}");
        }
    }

    #[test]
    fn prepared_executions_land_in_template_stats() {
        let e = engine();
        let mut session = StatementRegistry::default();
        let r = e.handle_line_session(
            r#"{"prepare":"SELECT count(*) AS n FROM fact WHERE f_v >= ?"}"#,
            &mut session,
        );
        let id = r.get("stmt_id").unwrap().as_i64().unwrap();
        for v in [10, 25] {
            let r = e.handle_line_session(
                &format!(r#"{{"execute":{{"id":{id},"params":[{v}]}}}}"#),
                &mut session,
            );
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        }
        // The text-mode spelling of the same query shares the series.
        sql(&e, "SELECT count(*) AS n FROM fact WHERE f_v >= 99");
        let snap = e.templates().snapshot();
        assert_eq!(snap.len(), 1, "one canonical template: {snap:?}");
        assert_eq!(snap[0].1.count(), 3, "prepared and text executions share it");
    }

    #[test]
    fn concurrent_writes_group_commit_and_recover() {
        let dir = std::env::temp_dir().join(format!("astore-engine-group-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed = {
            let e = engine();
            e.database().snapshot().as_ref().clone()
        };
        let wal = astore_persist::store::bootstrap(&dir, &seed).unwrap();
        let e = std::sync::Arc::new(
            Engine::new(SharedDatabase::new(seed)).durable(Durability::new(&dir, wal, 0)),
        );
        let (threads, per) = (8, 10);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let e = e.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        let r = sql(&e, "INSERT INTO fact VALUES (0, 1)");
                        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
                    }
                });
            }
        });
        use std::sync::atomic::Ordering::Relaxed;
        let total = (threads * per) as u64;
        assert_eq!(e.stats().writes.load(Relaxed), total);
        assert_eq!(e.stats().wal_records.load(Relaxed), total);
        let commits = e.stats().group_commits.load(Relaxed);
        assert!(commits >= 1 && commits <= total, "commits {commits}");
        let r = sql(&e, "SELECT count(*) AS n FROM fact");
        let n =
            r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0].as_i64().unwrap();
        assert_eq!(n, 3 + total as i64);
        drop(e);
        // Every acknowledged write replays: group commit batches on disk
        // carry per-statement LSNs.
        let rec = astore_persist::store::open(&dir).unwrap();
        assert_eq!(rec.replayed, total as usize);
        assert_eq!(rec.db.table("fact").unwrap().num_live(), 3 + total as usize);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_batchmates_bounce_individually() {
        // Valid and invalid writes race into the same batches; each invalid
        // one gets its own write_error and never drags a batchmate down.
        let e = std::sync::Arc::new(engine());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let e = e.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        let r = sql(&e, "INSERT INTO fact VALUES (1, 7)");
                        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
                    }
                });
            }
            for _ in 0..2 {
                let e = e.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        let r = sql(&e, "INSERT INTO fact VALUES (9, 1)"); // dangling key
                        assert_eq!(r.get("code").unwrap().as_str(), Some("write_error"), "{r:?}");
                    }
                });
            }
        });
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(e.stats().writes.load(Relaxed), 40);
        let r = sql(&e, "SELECT count(*) AS n FROM fact");
        let n =
            r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0].as_i64().unwrap();
        assert_eq!(n, 43, "valid writes all landed, invalid none");
    }

    #[test]
    fn compaction_folds_write_throughs_back_into_seals() {
        let e = Engine::new(SharedDatabase::new(big_db()));
        // Boot sealed both full fact segments; a write-through leaves one
        // encoding stale without voiding it.
        let n = 2 * SEGMENT_ROWS as i64;
        let base_sum: i64 = n * (n - 1) / 2;
        let r = sql(&e, "UPDATE fact SET f_v = 999999 WHERE rowid = 5");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        let delta = |e: &Engine| {
            let r = e.handle_line(r#"{"cmd":"stats"}"#);
            r.get("stats").unwrap().get("delta_rows").unwrap().as_i64().unwrap()
        };
        assert!(delta(&e) > 0, "write-through must be visible in delta_rows");
        let mut installed = 0;
        loop {
            let k = e.run_compaction_pass();
            if k == 0 {
                break;
            }
            installed += k;
        }
        assert!(installed >= 1, "compactor re-sealed the stale segment");
        use std::sync::atomic::Ordering::Relaxed;
        assert!(e.stats().compactions.load(Relaxed) >= 1);
        assert_eq!(delta(&e), 0, "all deltas folded back");
        let r = sql(&e, "SELECT sum(f_v) AS s FROM fact");
        let s =
            r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0].as_i64().unwrap();
        assert_eq!(s, base_sum - 5 + 999999, "compaction preserved the current values");
    }

    #[test]
    fn checkpoint_races_writers_without_losing_acks() {
        let dir = std::env::temp_dir().join(format!("astore-engine-ckptw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed = {
            let e = engine();
            e.database().snapshot().as_ref().clone()
        };
        let wal = astore_persist::store::bootstrap(&dir, &seed).unwrap();
        let e = std::sync::Arc::new(
            Engine::new(SharedDatabase::new(seed)).durable(Durability::new(&dir, wal, 0)),
        );
        let (threads, per) = (4, 25);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let e = e.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        let r = sql(&e, "INSERT INTO fact VALUES (0, 1)");
                        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
                    }
                });
            }
            // Checkpoints run concurrently with the writers: the encode
            // happens off-lock, the WAL truncation must never drop a record
            // the snapshot file does not cover.
            for _ in 0..5 {
                e.checkpoint().unwrap();
            }
        });
        let expect = 3 + (threads * per) as usize;
        drop(e);
        let rec = astore_persist::store::open(&dir).unwrap();
        assert_eq!(rec.db.table("fact").unwrap().num_live(), expect, "no acked write lost");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sqls(e: &Engine, session: &mut StatementRegistry, s: &str) -> Json {
        e.handle_line_session(&Json::obj([("sql", Json::Str(s.into()))]).to_string(), session)
    }

    #[test]
    fn set_engine_pins_the_session_and_results_stay_identical() {
        let e = engine();
        let mut session = StatementRegistry::default();
        let q = "SELECT d_name, sum(f_v) AS total FROM fact, dim GROUP BY d_name ORDER BY d_name";
        let air = sqls(&e, &mut session, q);
        assert_eq!(air.get("engine").unwrap().as_str(), Some("air"), "{air:?}");

        for engine_name in ["join", "denorm"] {
            let r = sqls(&e, &mut session, &format!("SET engine = {engine_name}"));
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
            assert_eq!(r.get("engine").unwrap().as_str(), Some(engine_name));
            let pinned = sqls(&e, &mut session, q);
            assert_eq!(pinned.get("engine").unwrap().as_str(), Some(engine_name), "{pinned:?}");
            assert_eq!(pinned.get("rows"), air.get("rows"), "{engine_name} differs from air");
            assert_eq!(pinned.get("columns"), air.get("columns"));
        }

        // `auto` unpins; a bad value is a typed parse error; pins are
        // per-session (a throwaway-session statement routes adaptively).
        let r = sqls(&e, &mut session, "SET engine=auto");
        assert_eq!(r.get("engine").unwrap().as_str(), Some("auto"));
        let r = sqls(&e, &mut session, "SET engine = quantum");
        assert_eq!(r.get("code").unwrap().as_str(), Some("parse_error"), "{r:?}");
        let fresh = sql(&e, q);
        assert_eq!(fresh.get("engine").unwrap().as_str(), Some("air"), "cold template → warmup");
    }

    #[test]
    fn unrewritable_shapes_fall_back_to_air_and_are_remembered() {
        let e = engine();
        let mut session = StatementRegistry::default();
        sqls(&e, &mut session, "SET engine = denorm");
        // Grouping by a key column: the wide table folds references away,
        // so the shape probe rejects the rewrite and the query falls back.
        let q = "SELECT f_dim, count(*) AS c FROM fact GROUP BY f_dim ORDER BY f_dim";
        let r = sqls(&e, &mut session, q);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(r.get("engine").unwrap().as_str(), Some("air"), "fallback, not failure");
        let rows = r.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_array().unwrap()[1].as_i64(), Some(2));
        // The probe is cached: the template's denorm arm stays excluded.
        let snap = e.router().snapshot();
        assert_eq!(snap.templates.len(), 1);
        let r = sqls(&e, &mut session, q);
        assert_eq!(r.get("engine").unwrap().as_str(), Some("air"));
    }

    #[test]
    fn pinned_denorm_rebuilds_after_writes() {
        // End-to-end epoch invalidation: a pinned-denorm session must see
        // every committed write — stale wide tables are never served.
        let e = engine();
        let mut session = StatementRegistry::default();
        sqls(&e, &mut session, "SET engine = denorm");
        let q = "SELECT sum(f_v) AS s FROM fact";
        let r = sqls(&e, &mut session, q);
        assert_eq!(r.get("engine").unwrap().as_str(), Some("denorm"), "{r:?}");
        let sum = |r: &Json| {
            r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0].as_i64().unwrap()
        };
        assert_eq!(sum(&r), 60);
        assert_eq!(e.denorm_cache().len(), 1, "materialization cached");

        sqls(&e, &mut session, "INSERT INTO fact VALUES (1, 40)");
        let r = sqls(&e, &mut session, q);
        assert_eq!(r.get("engine").unwrap().as_str(), Some("denorm"));
        assert_eq!(sum(&r), 100, "write invalidated the cached wide table");

        sqls(&e, &mut session, "UPDATE fact SET f_v = 11 WHERE rowid = 0");
        let r = sqls(&e, &mut session, q);
        assert_eq!(sum(&r), 101, "update invalidated it too");
    }

    #[test]
    fn router_explores_alternatives_and_counts_decisions() {
        let e = engine();
        let q = "SELECT d_name, sum(f_v) AS total FROM fact, dim GROUP BY d_name ORDER BY d_name";
        let baseline = sql(&e, q);
        let mut engines_seen = std::collections::HashSet::new();
        for _ in 0..40 {
            let r = sql(&e, q);
            assert_eq!(r.get("rows"), baseline.get("rows"), "result identity across engines");
            engines_seen.insert(r.get("engine").unwrap().as_str().unwrap().to_owned());
        }
        assert!(engines_seen.contains("air"));
        assert!(engines_seen.len() >= 2, "explore arms tried an alternative: {engines_seen:?}");
        let snap = e.router().snapshot();
        assert_eq!(snap.total_decisions, 41);
        assert_eq!(snap.templates.len(), 1);
        use std::sync::atomic::Ordering::Relaxed;
        let by_engine: u64 = e.stats().router_decisions.iter().map(|c| c.load(Relaxed)).sum();
        assert_eq!(by_engine, 41, "every decision counted in stats");
    }

    #[test]
    fn bare_explain_previews_without_executing() {
        let e = engine();
        let r = sql(&e, "EXPLAIN SELECT d_name, sum(f_v) AS s FROM fact, dim GROUP BY d_name");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(r.get("engine").unwrap().as_str(), Some("air"), "cold template previews AIR");
        assert_eq!(r.get("reason").unwrap().as_str(), Some("warmup"));
        assert!(r.get("rows").is_none(), "EXPLAIN does not execute");
        let lines: Vec<&str> = r
            .get("explain")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|l| l.as_str().unwrap())
            .collect();
        let joined = lines.join("\n");
        assert!(joined.contains("features: fact_rows_live=3"), "{joined}");
        assert!(joined.contains("top_feature:"), "{joined}");
        assert!(joined.contains("eligible: air,join,denorm"), "{joined}");
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(e.stats().queries.load(Relaxed), 0, "no query ran");
        assert_eq!(e.router().snapshot().total_decisions, 0, "no decision consumed");
        // Writes are rejected with a typed error, same as EXPLAIN ANALYZE.
        let r = sql(&e, "EXPLAIN INSERT INTO fact VALUES (0, 1)");
        assert_eq!(r.get("code").unwrap().as_str(), Some("plan_error"), "{r:?}");
    }

    #[test]
    fn explain_analyze_names_the_routed_engine() {
        let e = engine();
        let mut session = StatementRegistry::default();
        sqls(&e, &mut session, "SET engine = join");
        let r = sqls(&e, &mut session, "EXPLAIN ANALYZE SELECT sum(f_v) AS s FROM fact, dim");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(r.get("engine").unwrap().as_str(), Some("join"));
        let lines: Vec<String> = r
            .get("analyze")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|l| l.as_str().unwrap().to_owned())
            .collect();
        let joined = lines.join("\n");
        assert!(joined.contains("router: engine=join reason=pinned"), "{joined}");
        assert!(joined.contains("engine: join"), "{joined}");
    }

    #[test]
    fn set_engine_parser_accepts_reasonable_spellings() {
        for (input, want) in [
            ("SET engine = air", Some(EngineChoice::Air)),
            ("set ENGINE=join;", Some(EngineChoice::Join)),
            ("  SET engine denorm", Some(EngineChoice::Denorm)),
            ("SET engine=auto", None),
        ] {
            assert_eq!(parse_set_engine(input).unwrap().unwrap(), want, "{input}");
        }
        assert!(parse_set_engine("SET engine = warp").unwrap().is_err());
        assert!(parse_set_engine("SET engine").unwrap().is_err());
        assert!(parse_set_engine("SELECT 1").is_none());
        assert!(parse_set_engine("SET other = 1").is_none());
    }

    #[test]
    fn snapshot_reads_do_not_block_writes() {
        // A reader holding a snapshot mid-query must not see a concurrent
        // multi-row insert tear. Exercised via raw engine calls.
        let e = std::sync::Arc::new(engine());
        let writer = {
            let e = e.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let r = sql(&e, "INSERT INTO fact VALUES (0, 1), (1, -1)");
                    assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
                }
            })
        };
        for _ in 0..50 {
            let r = sql(&e, "SELECT sum(f_v) AS s FROM fact");
            let rows = r.get("rows").unwrap().as_array().unwrap();
            let s = rows[0].as_array().unwrap()[0].as_i64().unwrap();
            // Base sum is 60; each atomic batch adds 1 - 1 = 0.
            assert_eq!(s, 60, "reader observed a torn multi-row insert");
        }
        writer.join().unwrap();
    }
}
