//! Adaptive engine router: learned per-template strategy selection.
//!
//! The paper's thesis is that the join-free AIR scan beats join pipelines on
//! *most but not all* star-schema queries. This module makes that a live
//! planner decision: for each canonical statement template the router picks
//! one of three engines —
//!
//! * **air** — the production AIR scan (`astore_core::exec::execute`),
//! * **join** — the hash-join baseline (`astore_baseline::engine`),
//! * **denorm** — a scan over a cached materialized denormalization
//!   (`astore_baseline::denorm`), invalidated by table epoch on write —
//!
//! using static plan features (zone-map segment survival, estimated group-by
//! domain, predicate selectivity, live fact rows) to seed the choice and
//! *observed* per-template per-engine latencies to correct it. Exploration is
//! epsilon-greedy but deterministic: every `epsilon_n`-th decision for a
//! template runs the least-tried eligible engine instead of the believed-best
//! one, so a misprediction cannot persist. All engines are bound by a hard
//! result-identity contract — rows must be bit-identical — which the
//! differential suites and the replay harness enforce.
//!
//! Router history is deliberately **decoupled from the plan cache**: the
//! per-template arm statistics live in their own bounded LRU keyed by the
//! canonical template string, so plan-cache churn cannot erase what the
//! router has learned (ISSUE 10 satellite).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use astore_baseline::denorm::{denormalize, Denormalized};
use astore_core::graph::JoinGraph;
use astore_core::query::Query;
use astore_core::universal::{bind_root, BindError};
use astore_core::zone::conjunct_zone_survival;
use astore_storage::catalog::Database;
use astore_storage::column::Column;
use astore_storage::table::Table;

/// The execution engines the router chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Join-free AIR scan — the production path.
    Air = 0,
    /// Hash-join baseline pipeline.
    Join = 1,
    /// Scan over a cached materialized denormalization.
    Denorm = 2,
}

impl EngineChoice {
    /// All engines, in arm order.
    pub const ALL: [EngineChoice; 3] =
        [EngineChoice::Air, EngineChoice::Join, EngineChoice::Denorm];

    /// Stable wire/metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineChoice::Air => "air",
            EngineChoice::Join => "join",
            EngineChoice::Denorm => "denorm",
        }
    }

    /// Arm index (0..3).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Parses a wire/CLI label (`air`/`join`/`denorm`; `auto` → `None`).
    pub fn parse(s: &str) -> Result<Option<EngineChoice>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "air" => Ok(Some(EngineChoice::Air)),
            "join" => Ok(Some(EngineChoice::Join)),
            "denorm" => Ok(Some(EngineChoice::Denorm)),
            "auto" => Ok(None),
            other => Err(format!("unknown engine {other:?} (expected air|join|denorm|auto)")),
        }
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Every `epsilon_n`-th decision for a template explores the least-tried
    /// eligible arm instead of exploiting the believed-best one.
    pub epsilon_n: u64,
    /// AIR observations a template must accumulate before any non-AIR arm is
    /// considered. Keeps cold templates on the production path until the
    /// router has a baseline to compare against.
    pub warmup: u64,
    /// Server-wide engine pin (`--engine`); `None` routes adaptively.
    pub pinned: Option<EngineChoice>,
    /// Maximum templates the latency-history LRU retains.
    pub history_capacity: usize,
    /// Denormalization is never attempted when the fact table holds more
    /// live rows than this (the materialization would dwarf its benefit).
    pub denorm_max_fact_rows: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            epsilon_n: 16,
            warmup: 8,
            pinned: None,
            history_capacity: 4096,
            denorm_max_fact_rows: 8_000_000,
        }
    }
}

/// The static feature vector the router extracts per execution — cheap,
/// zone-map-level plan statistics (no row touched).
#[derive(Debug, Clone, Copy, Default)]
pub struct Features {
    /// Live rows in the root (fact) table.
    pub fact_rows_live: u64,
    /// Total fact segments.
    pub segments_total: u64,
    /// Segments surviving the best zone-prunable fact conjunct.
    pub segments_surviving: u64,
    /// Estimated group-by output domain (product of per-column distinct
    /// estimates, saturating).
    pub group_domain: u64,
    /// Estimated selection survival fraction in `[0, 1]`.
    pub selectivity: f64,
}

impl Features {
    /// Extracts the feature vector from a snapshot and a bound query.
    /// Returns defaults when the root cannot be resolved (the executor will
    /// fail the query with a proper error anyway).
    pub fn extract(db: &Database, query: &Query) -> Features {
        let graph = JoinGraph::build(db);
        let referenced = query.referenced_tables();
        let root = match bind_root(&graph, query.root.as_deref(), &referenced) {
            Ok(r) => r,
            Err(_) => return Features::default(),
        };
        let Some(fact) = db.table(&root) else { return Features::default() };

        let segments_total = fact.segment_count() as u64;
        // Segment survival of the most selective zone-prunable fact conjunct;
        // dimension predicates discount selectivity by a fixed factor each
        // (they prune rows the zone maps cannot see).
        let mut best_survival = 1.0f64;
        let mut selectivity = 1.0f64;
        for (table, pred) in &query.selections {
            if *table == root {
                for c in pred.conjuncts() {
                    let s = conjunct_zone_survival(c, fact);
                    best_survival = best_survival.min(s);
                    selectivity *= s;
                }
            } else {
                selectivity *= 0.5;
            }
        }
        let segments_surviving =
            ((segments_total as f64) * best_survival).ceil().min(segments_total as f64) as u64;

        // Group-by domain: product of per-column distinct estimates. Dict
        // columns know their cardinality exactly; everything else is bounded
        // by the owning table's live rows.
        let mut group_domain = 1u64;
        for g in &query.group_by {
            let distinct = db
                .table(&g.table)
                .map(|t| match t.column(&g.column) {
                    Some(Column::Dict(d)) => d.dict().len() as u64,
                    _ => t.num_live() as u64,
                })
                .unwrap_or(1)
                .max(1);
            group_domain = group_domain.saturating_mul(distinct);
        }

        Features {
            fact_rows_live: fact.num_live() as u64,
            segments_total,
            segments_surviving,
            group_domain,
            selectivity,
        }
    }

    /// The feature that most strongly shaped the decision: the name shown by
    /// `EXPLAIN` and the CLI's `\plan on` banner, with its value.
    pub fn top_feature(&self) -> (&'static str, f64) {
        // A near-fully-pruned scan is AIR's strongest signal; a huge group
        // domain is the join/denorm pipelines' weakest spot; otherwise the
        // selection survival fraction dominates.
        let survival = if self.segments_total == 0 {
            1.0
        } else {
            self.segments_surviving as f64 / self.segments_total as f64
        };
        if survival <= 0.5 {
            ("segment_survival", survival)
        } else if self.group_domain > 10_000 {
            ("group_domain", self.group_domain as f64)
        } else {
            ("selectivity", self.selectivity)
        }
    }
}

/// One arm's running latency estimate.
#[derive(Debug, Clone, Copy, Default)]
struct ArmStats {
    /// Exponentially-weighted moving average of observed latency (µs).
    ewma_us: f64,
    /// Observations recorded.
    tries: u64,
}

impl ArmStats {
    fn observe(&mut self, us: f64) {
        if self.tries == 0 {
            self.ewma_us = us;
        } else {
            self.ewma_us = 0.8 * self.ewma_us + 0.2 * us;
        }
        self.tries += 1;
    }
}

/// Per-template router state.
#[derive(Debug, Clone, Default)]
struct TemplateState {
    arms: [ArmStats; 3],
    decisions: u64,
    /// Whether this template's query shape can be rewritten onto the wide
    /// denormalized table (`None` = not yet probed).
    denorm_rewritable: Option<bool>,
    /// Cumulative regret (µs) vs the best tried arm's estimate.
    regret_us: f64,
    /// LRU stamp.
    last_used: u64,
}

/// How a decision was reached — surfaced through `EXPLAIN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// A session (`SET engine=...`) or server (`--engine`) pin.
    Pinned,
    /// Template still inside the AIR warmup window.
    Warmup,
    /// Deterministic epsilon-greedy exploration of the least-tried arm.
    Explore,
    /// Lowest-EWMA exploitation.
    Exploit,
}

impl DecisionReason {
    /// Stable wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionReason::Pinned => "pinned",
            DecisionReason::Warmup => "warmup",
            DecisionReason::Explore => "explore",
            DecisionReason::Exploit => "exploit",
        }
    }
}

/// The router's verdict for one execution.
#[derive(Debug, Clone, Copy)]
pub struct Decision {
    /// The engine to run.
    pub choice: EngineChoice,
    /// Why it was chosen.
    pub reason: DecisionReason,
}

/// Feedback from recording one observed latency.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// Observed latency exceeded 1.5× the best tried arm's estimate — the
    /// router believed wrong.
    pub mispredicted: bool,
    /// Regret increment (µs) vs the best tried arm's estimate.
    pub regret_us: f64,
}

/// One template's arm statistics in a [`RouterSnapshot`].
#[derive(Debug, Clone)]
pub struct TemplateSnapshot {
    /// Canonical template string.
    pub template: String,
    /// Decisions taken for this template.
    pub decisions: u64,
    /// Per-engine `(tries, ewma_us)` in [`EngineChoice::ALL`] order.
    pub arms: [(u64, f64); 3],
    /// Cumulative regret (µs).
    pub regret_us: f64,
    /// The arm the router currently believes best (lowest tried EWMA).
    pub best: EngineChoice,
}

/// A point-in-time copy of the router's learned state.
#[derive(Debug, Clone, Default)]
pub struct RouterSnapshot {
    /// Per-template statistics, insertion order unspecified.
    pub templates: Vec<TemplateSnapshot>,
    /// Total regret (µs) accumulated across all templates since start.
    pub total_regret_us: f64,
    /// Total decisions taken.
    pub total_decisions: u64,
}

#[derive(Debug)]
struct RouterInner {
    templates: HashMap<String, TemplateState>,
    stamp: u64,
    total_regret_us: f64,
    total_decisions: u64,
}

/// The adaptive engine router: per-template epsilon-greedy bandit over the
/// three execution engines, with its own bounded history (independent of the
/// plan cache).
#[derive(Debug)]
pub struct Router {
    config: RouterConfig,
    inner: Mutex<RouterInner>,
}

impl Router {
    /// Creates a router with the given configuration.
    pub fn new(config: RouterConfig) -> Router {
        Router {
            config,
            inner: Mutex::new(RouterInner {
                templates: HashMap::new(),
                stamp: 0,
                total_regret_us: 0.0,
                total_decisions: 0,
            }),
        }
    }

    /// The configuration this router runs with.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Picks an engine for one execution of `template`.
    ///
    /// `eligible` marks which arms *can* produce this query's result (AIR is
    /// always eligible; join/denorm may be ruled out by query shape or fact
    /// size). `session_pin` is a `SET engine=...` override and wins over the
    /// server-wide pin; a pinned engine that is not eligible falls back to
    /// AIR rather than failing the query.
    pub fn decide(
        &self,
        template: &str,
        mut eligible: [bool; 3],
        session_pin: Option<EngineChoice>,
    ) -> Decision {
        eligible[EngineChoice::Air.index()] = true;
        let mut inner = self.inner.lock().unwrap();
        inner.stamp += 1;
        inner.total_decisions += 1;
        let stamp = inner.stamp;
        self.evict_if_full(&mut inner, template);
        let state = inner.templates.entry(template.to_owned()).or_default();
        state.last_used = stamp;
        state.decisions += 1;
        if state.denorm_rewritable == Some(false) {
            eligible[EngineChoice::Denorm.index()] = false;
        }

        if let Some(pin) = session_pin.or(self.config.pinned) {
            let choice = if eligible[pin.index()] { pin } else { EngineChoice::Air };
            return Decision { choice, reason: DecisionReason::Pinned };
        }

        // Cold start: stay on the production AIR path until it has a
        // trustworthy latency estimate to compare alternatives against.
        if state.arms[EngineChoice::Air.index()].tries < self.config.warmup {
            return Decision { choice: EngineChoice::Air, reason: DecisionReason::Warmup };
        }

        // Deterministic epsilon-greedy: every epsilon_n-th decision tries the
        // least-tried eligible arm.
        if self.config.epsilon_n > 0 && state.decisions.is_multiple_of(self.config.epsilon_n) {
            let choice = EngineChoice::ALL
                .into_iter()
                .filter(|e| eligible[e.index()])
                .min_by_key(|e| state.arms[e.index()].tries)
                .unwrap_or(EngineChoice::Air);
            return Decision { choice, reason: DecisionReason::Explore };
        }

        // Exploit: lowest EWMA among tried eligible arms (ties → AIR first).
        let choice = EngineChoice::ALL
            .into_iter()
            .filter(|e| eligible[e.index()] && state.arms[e.index()].tries > 0)
            .min_by(|a, b| state.arms[a.index()].ewma_us.total_cmp(&state.arms[b.index()].ewma_us))
            .unwrap_or(EngineChoice::Air);
        Decision { choice, reason: DecisionReason::Exploit }
    }

    /// What [`Router::decide`] *would* pick for `template`, without mutating
    /// any state — no decision counter, no LRU touch. This is the `EXPLAIN`
    /// path: the statement is not executed, so the router must not learn
    /// from it. Exploration cadence is previewed against the *next* decision
    /// number.
    pub fn peek(
        &self,
        template: &str,
        mut eligible: [bool; 3],
        session_pin: Option<EngineChoice>,
    ) -> Decision {
        eligible[EngineChoice::Air.index()] = true;
        let inner = self.inner.lock().unwrap();
        let default_state = TemplateState::default();
        let state = inner.templates.get(template).unwrap_or(&default_state);
        if state.denorm_rewritable == Some(false) {
            eligible[EngineChoice::Denorm.index()] = false;
        }

        if let Some(pin) = session_pin.or(self.config.pinned) {
            let choice = if eligible[pin.index()] { pin } else { EngineChoice::Air };
            return Decision { choice, reason: DecisionReason::Pinned };
        }
        if state.arms[EngineChoice::Air.index()].tries < self.config.warmup {
            return Decision { choice: EngineChoice::Air, reason: DecisionReason::Warmup };
        }
        if self.config.epsilon_n > 0 && (state.decisions + 1).is_multiple_of(self.config.epsilon_n)
        {
            let choice = EngineChoice::ALL
                .into_iter()
                .filter(|e| eligible[e.index()])
                .min_by_key(|e| state.arms[e.index()].tries)
                .unwrap_or(EngineChoice::Air);
            return Decision { choice, reason: DecisionReason::Explore };
        }
        let choice = EngineChoice::ALL
            .into_iter()
            .filter(|e| eligible[e.index()] && state.arms[e.index()].tries > 0)
            .min_by(|a, b| state.arms[a.index()].ewma_us.total_cmp(&state.arms[b.index()].ewma_us))
            .unwrap_or(EngineChoice::Air);
        Decision { choice, reason: DecisionReason::Exploit }
    }

    /// Records an observed latency for `template` run on `choice`, updating
    /// the arm's EWMA and the regret/misprediction accounting.
    pub fn observe(&self, template: &str, choice: EngineChoice, us: f64) -> Observation {
        let mut inner = self.inner.lock().unwrap();
        inner.stamp += 1;
        let stamp = inner.stamp;
        self.evict_if_full(&mut inner, template);
        let state = inner.templates.entry(template.to_owned()).or_default();
        state.last_used = stamp;
        state.arms[choice.index()].observe(us);
        let best = state
            .arms
            .iter()
            .filter(|a| a.tries > 0)
            .map(|a| a.ewma_us)
            .fold(f64::INFINITY, f64::min);
        let (mispredicted, regret_us) = if best.is_finite() {
            (us > 1.5 * best && best > 0.0, (us - best).max(0.0))
        } else {
            (false, 0.0)
        };
        state.regret_us += regret_us;
        inner.total_regret_us += regret_us;
        Observation { mispredicted, regret_us }
    }

    /// Marks a template's shape as (not) rewritable onto the denormalized
    /// wide table, permanently excluding (or admitting) the denorm arm.
    pub fn set_denorm_rewritable(&self, template: &str, ok: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.stamp += 1;
        let stamp = inner.stamp;
        self.evict_if_full(&mut inner, template);
        let state = inner.templates.entry(template.to_owned()).or_default();
        state.last_used = stamp;
        state.denorm_rewritable = Some(ok);
    }

    /// Cached denorm-rewritability verdict for a template, if probed.
    pub fn denorm_rewritable(&self, template: &str) -> Option<bool> {
        let inner = self.inner.lock().unwrap();
        inner.templates.get(template).and_then(|s| s.denorm_rewritable)
    }

    /// Number of templates currently tracked.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().templates.len()
    }

    /// Returns `true` if no template has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The arm the router currently believes best for `template`, with its
    /// EWMA (µs) — `None` for unknown templates or before any observation.
    pub fn believed_best(&self, template: &str) -> Option<(EngineChoice, f64)> {
        let inner = self.inner.lock().unwrap();
        let state = inner.templates.get(template)?;
        EngineChoice::ALL
            .into_iter()
            .filter(|e| state.arms[e.index()].tries > 0)
            .min_by(|a, b| state.arms[a.index()].ewma_us.total_cmp(&state.arms[b.index()].ewma_us))
            .map(|e| (e, state.arms[e.index()].ewma_us))
    }

    /// One template's learned state, if tracked — the `EXPLAIN` payload.
    pub fn template_snapshot(&self, template: &str) -> Option<TemplateSnapshot> {
        let inner = self.inner.lock().unwrap();
        let s = inner.templates.get(template)?;
        let best = EngineChoice::ALL
            .into_iter()
            .filter(|e| s.arms[e.index()].tries > 0)
            .min_by(|a, b| s.arms[a.index()].ewma_us.total_cmp(&s.arms[b.index()].ewma_us))
            .unwrap_or(EngineChoice::Air);
        Some(TemplateSnapshot {
            template: template.to_owned(),
            decisions: s.decisions,
            arms: [
                (s.arms[0].tries, s.arms[0].ewma_us),
                (s.arms[1].tries, s.arms[1].ewma_us),
                (s.arms[2].tries, s.arms[2].ewma_us),
            ],
            regret_us: s.regret_us,
            best,
        })
    }

    /// Copies out the full learned state (for `EXPLAIN`, the stats command
    /// and the replay harness's `BENCH_router.json`).
    pub fn snapshot(&self) -> RouterSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut templates: Vec<TemplateSnapshot> = inner
            .templates
            .iter()
            .map(|(k, s)| {
                let best = EngineChoice::ALL
                    .into_iter()
                    .filter(|e| s.arms[e.index()].tries > 0)
                    .min_by(|a, b| s.arms[a.index()].ewma_us.total_cmp(&s.arms[b.index()].ewma_us))
                    .unwrap_or(EngineChoice::Air);
                TemplateSnapshot {
                    template: k.clone(),
                    decisions: s.decisions,
                    arms: [
                        (s.arms[0].tries, s.arms[0].ewma_us),
                        (s.arms[1].tries, s.arms[1].ewma_us),
                        (s.arms[2].tries, s.arms[2].ewma_us),
                    ],
                    regret_us: s.regret_us,
                    best,
                }
            })
            .collect();
        templates.sort_by(|a, b| a.template.cmp(&b.template));
        RouterSnapshot {
            templates,
            total_regret_us: inner.total_regret_us,
            total_decisions: inner.total_decisions,
        }
    }

    /// Evicts the least-recently-used template when inserting `incoming`
    /// would exceed the history capacity. O(n) scan — eviction is rare at
    /// the default capacity.
    fn evict_if_full(&self, inner: &mut RouterInner, incoming: &str) {
        if inner.templates.len() < self.config.history_capacity.max(1)
            || inner.templates.contains_key(incoming)
        {
            return;
        }
        if let Some(victim) =
            inner.templates.iter().min_by_key(|(_, s)| s.last_used).map(|(k, _)| k.clone())
        {
            inner.templates.remove(&victim);
        }
    }
}

/// Returns `true` when every column the query references maps onto the wide
/// denormalized table — the precondition for [`Denormalized::rewrite`]
/// (which panics on unmapped columns, e.g. `rowid` or key columns).
pub fn query_rewritable(denorm: &Denormalized, query: &Query, root: &str) -> bool {
    for (table, pred) in &query.selections {
        for col in pred.columns() {
            if denorm.wide_column(table, col).is_none() {
                return false;
            }
        }
    }
    for g in &query.group_by {
        if denorm.wide_column(&g.table, &g.column).is_none() {
            return false;
        }
    }
    for a in &query.aggregates {
        if let Some(expr) = &a.expr {
            for col in expr.columns() {
                if denorm.wide_column(root, col).is_none() {
                    return false;
                }
            }
        }
    }
    true
}

/// One cached materialization: the wide table plus the identity (Arc) and
/// epoch of every source table it was folded from.
pub struct DenormEntry {
    /// The materialized denormalization (wide db + column mapping).
    pub denorm: Denormalized,
    /// `(table, source Arc, epoch at build)` for the root and every folded
    /// dimension. An entry is valid only while each source is either the
    /// *same* Arc (pointer equality — untouched under COW snapshots) or an
    /// equal-epoch rebuild.
    sources: Vec<(String, Arc<Table>, u64)>,
}

impl DenormEntry {
    /// Is this materialization still current for `db`? Stale entries are
    /// dropped, never served (epoch-based invalidation on write).
    pub fn valid_for(&self, db: &Database) -> bool {
        self.sources.iter().all(|(name, arc, epoch)| match db.table_arc(name) {
            Some(cur) => Arc::ptr_eq(&cur, arc) || cur.epoch() == *epoch,
            None => false,
        })
    }
}

/// Cache of denormalized wide tables, keyed by root (fact) table name, with
/// epoch-based invalidation on write.
#[derive(Default)]
pub struct DenormCache {
    entries: Mutex<HashMap<String, Arc<DenormEntry>>>,
}

impl std::fmt::Debug for DenormCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenormCache").field("entries", &self.len()).finish()
    }
}

impl DenormCache {
    /// Creates an empty cache.
    pub fn new() -> DenormCache {
        DenormCache::default()
    }

    /// Returns a current materialization rooted at `root`, building (and
    /// caching) one if missing or stale. `db` must be the execution's
    /// immutable snapshot — sources are captured from it, so the entry is
    /// exactly as fresh as the snapshot.
    pub fn get_or_build(&self, db: &Database, root: &str) -> Result<Arc<DenormEntry>, BindError> {
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.get(root) {
            if entry.valid_for(db) {
                return Ok(Arc::clone(entry));
            }
            entries.remove(root);
        }
        let denorm = denormalize(db, Some(root))?;
        let graph = JoinGraph::build(db);
        let mut names: Vec<String> = vec![root.to_owned()];
        names.extend(graph.leaves_of(root).into_iter().map(str::to_owned));
        let mut sources = Vec::with_capacity(names.len());
        for name in names {
            if let Some(arc) = db.table_arc(&name) {
                let epoch = arc.epoch();
                sources.push((name, arc, epoch));
            }
        }
        let entry = Arc::new(DenormEntry { denorm, sources });
        entries.insert(root.to_owned(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Number of cached materializations (including any stale ones not yet
    /// probed).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached materialization.
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PlanCache;
    use astore_storage::prelude::*;

    fn cfg(warmup: u64, epsilon_n: u64) -> RouterConfig {
        RouterConfig { warmup, epsilon_n, ..RouterConfig::default() }
    }

    #[test]
    fn warmup_keeps_cold_templates_on_air() {
        let r = Router::new(cfg(3, 16));
        for _ in 0..3 {
            let d = r.decide("q", [true; 3], None);
            assert_eq!(d.choice, EngineChoice::Air);
            assert_eq!(d.reason, DecisionReason::Warmup);
            r.observe("q", EngineChoice::Air, 100.0);
        }
        // Warmup satisfied: next non-explore decision exploits.
        let d = r.decide("q", [true; 3], None);
        assert_eq!(d.choice, EngineChoice::Air, "only AIR has been tried");
    }

    #[test]
    fn explore_cadence_tries_least_tried_arm() {
        let r = Router::new(cfg(0, 4));
        // Decisions 1..3 exploit; decision 4 must explore an untried arm.
        for _ in 0..3 {
            let d = r.decide("q", [true; 3], None);
            r.observe("q", d.choice, 50.0);
        }
        let d = r.decide("q", [true; 3], None);
        assert_eq!(d.reason, DecisionReason::Explore);
        assert_ne!(d.choice, EngineChoice::Air, "air is the most-tried arm");
    }

    #[test]
    fn exploit_follows_observed_latency() {
        let r = Router::new(cfg(0, 0));
        r.observe("q", EngineChoice::Air, 1000.0);
        r.observe("q", EngineChoice::Join, 100.0);
        let d = r.decide("q", [true; 3], None);
        assert_eq!(d.choice, EngineChoice::Join);
        assert_eq!(d.reason, DecisionReason::Exploit);
        // New evidence flips it back: joins got slow.
        for _ in 0..30 {
            r.observe("q", EngineChoice::Join, 5000.0);
        }
        let d = r.decide("q", [true; 3], None);
        assert_eq!(d.choice, EngineChoice::Air);
    }

    #[test]
    fn pins_win_and_fall_back_to_air_when_ineligible() {
        let r = Router::new(cfg(0, 0));
        let d = r.decide("q", [true; 3], Some(EngineChoice::Denorm));
        assert_eq!(d.choice, EngineChoice::Denorm);
        assert_eq!(d.reason, DecisionReason::Pinned);
        let mut eligible = [true; 3];
        eligible[EngineChoice::Denorm.index()] = false;
        let d = r.decide("q", eligible, Some(EngineChoice::Denorm));
        assert_eq!(d.choice, EngineChoice::Air, "ineligible pin degrades to AIR");

        let server_pinned =
            Router::new(RouterConfig { pinned: Some(EngineChoice::Join), ..cfg(0, 0) });
        let d = server_pinned.decide("q", [true; 3], None);
        assert_eq!(d.choice, EngineChoice::Join);
        // Session pin outranks the server pin.
        let d = server_pinned.decide("q", [true; 3], Some(EngineChoice::Air));
        assert_eq!(d.choice, EngineChoice::Air);
    }

    #[test]
    fn observe_tracks_regret_and_mispredictions() {
        let r = Router::new(cfg(0, 0));
        let o = r.observe("q", EngineChoice::Air, 100.0);
        assert!(!o.mispredicted, "first observation sets the baseline");
        assert_eq!(o.regret_us, 0.0);
        let o = r.observe("q", EngineChoice::Join, 1000.0);
        assert!(o.mispredicted, "10x the best arm's estimate");
        assert!(o.regret_us > 0.0);
        let snap = r.snapshot();
        assert!(snap.total_regret_us > 0.0);
        assert_eq!(snap.templates.len(), 1);
        assert_eq!(snap.templates[0].best, EngineChoice::Air);
    }

    #[test]
    fn denorm_rewritability_gates_the_arm() {
        let r = Router::new(cfg(0, 0));
        r.observe("q", EngineChoice::Air, 1000.0);
        r.observe("q", EngineChoice::Denorm, 10.0);
        let d = r.decide("q", [true; 3], None);
        assert_eq!(d.choice, EngineChoice::Denorm);
        r.set_denorm_rewritable("q", false);
        let d = r.decide("q", [true; 3], None);
        assert_ne!(d.choice, EngineChoice::Denorm, "shape probe excludes the arm");
        assert_eq!(r.denorm_rewritable("q"), Some(false));
    }

    /// ISSUE 10 satellite: router history is keyed and bounded independently
    /// of the plan cache, so evicting a plan must not erase learned latency.
    #[test]
    fn history_survives_plan_cache_eviction() {
        let db = star_db();
        let cache = PlanCache::with_capacity(2);
        let r = Router::new(cfg(0, 0));
        let sqls = [
            "SELECT sum(f_v) AS s FROM fact WHERE f_v > 1",
            "SELECT d_name, sum(f_v) AS s FROM fact, dim GROUP BY d_name",
            "SELECT count(*) AS c FROM fact",
        ];
        let mut keys = Vec::new();
        for sql in sqls {
            let mut tmpl = astore_sql::parse_template(sql).expect("parses");
            let key = astore_sql::prepared::canonicalize(&mut tmpl);
            let plan = astore_sql::prepare(sql, &db).expect("prepares");
            cache.insert(key.clone(), Arc::new(plan));
            r.observe(&key, EngineChoice::Join, 42.0);
            keys.push(key);
        }
        // FIFO capacity 2: the first plan is gone...
        assert!(cache.get(&keys[0]).is_none(), "plan was evicted");
        // ...but the router still remembers every template's latency.
        for k in &keys {
            let (best, ewma) = r.believed_best(k).expect("history survived eviction");
            assert_eq!(best, EngineChoice::Join);
            assert_eq!(ewma, 42.0);
        }
    }

    #[test]
    fn lru_evicts_oldest_template_at_capacity() {
        let r = Router::new(RouterConfig { history_capacity: 2, ..cfg(0, 0) });
        r.observe("a", EngineChoice::Air, 1.0);
        r.observe("b", EngineChoice::Air, 1.0);
        r.observe("a", EngineChoice::Air, 1.0); // refresh "a"
        r.observe("c", EngineChoice::Air, 1.0); // evicts "b"
        assert_eq!(r.len(), 2);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.templates.iter().map(|t| t.template.as_str()).collect();
        assert_eq!(names, vec!["a", "c"]);
    }

    /// `EXPLAIN` must not perturb the bandit: peek returns the same verdict
    /// decide would, without advancing the decision counter.
    #[test]
    fn peek_previews_decide_without_mutating() {
        let r = Router::new(cfg(0, 4));
        r.observe("q", EngineChoice::Air, 100.0);
        for _ in 0..3 {
            let previewed = r.peek("q", [true; 3], None);
            let taken = r.decide("q", [true; 3], None);
            assert_eq!(previewed.choice, taken.choice);
            assert_eq!(previewed.reason, taken.reason);
            r.observe("q", taken.choice, 100.0);
        }
        let before = r.snapshot().total_decisions;
        r.peek("q", [true; 3], None);
        assert_eq!(r.snapshot().total_decisions, before, "peek takes no decision");
        // Unknown templates are previewed as cold-start AIR.
        let d = r.peek("never-seen", [true; 3], None);
        assert_eq!(d.choice, EngineChoice::Air);
    }

    #[test]
    fn engine_choice_labels_round_trip() {
        for e in EngineChoice::ALL {
            assert_eq!(EngineChoice::parse(e.as_str()).unwrap(), Some(e));
        }
        assert_eq!(EngineChoice::parse("auto").unwrap(), None);
        assert!(EngineChoice::parse("quantum").is_err());
    }

    fn star_db() -> Database {
        let mut dim = Table::new(
            "dim",
            Schema::new(vec![
                ColumnDef::new("d_name", DataType::Dict),
                ColumnDef::new("d_rank", DataType::I32),
            ]),
        );
        dim.append_row(&[Value::Str("alpha".into()), Value::Int(1)]);
        dim.append_row(&[Value::Str("beta".into()), Value::Int(2)]);
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_v", DataType::I64),
            ]),
        );
        for (k, v) in [(0u32, 10i64), (1, 20), (0, 30)] {
            fact.append_row(&[Value::Key(k), Value::Int(v)]);
        }
        let mut db = Database::new();
        db.add_table(dim);
        db.add_table(fact);
        db
    }

    #[test]
    fn features_extract_from_snapshot() {
        let db = star_db();
        let q = astore_sql::sql_to_query(
            "SELECT d_name, sum(f_v) AS s FROM fact, dim WHERE f_v > 15 GROUP BY d_name",
            &db,
        )
        .unwrap();
        let f = Features::extract(&db, &q);
        assert_eq!(f.fact_rows_live, 3);
        assert!(f.segments_total >= 1);
        assert!(f.selectivity <= 1.0);
        assert_eq!(f.group_domain, 2, "d_name dictionary has two entries");
        let (name, _) = f.top_feature();
        assert!(!name.is_empty());
    }

    #[test]
    fn denorm_cache_validates_by_epoch_and_rebuilds_on_write() {
        let mut db = star_db();
        let cache = DenormCache::new();
        let e1 = cache.get_or_build(&db, "fact").unwrap();
        assert!(e1.valid_for(&db));
        let e2 = cache.get_or_build(&db, "fact").unwrap();
        assert!(Arc::ptr_eq(&e1, &e2), "unchanged db reuses the entry");

        // A write to any folded table invalidates the materialization.
        db.table_mut("fact").unwrap().append_row(&[Value::Key(1), Value::Int(40)]);
        assert!(!e1.valid_for(&db), "stale entries are detected, never served");
        let e3 = cache.get_or_build(&db, "fact").unwrap();
        assert!(!Arc::ptr_eq(&e1, &e3), "stale entry was dropped and rebuilt");
        assert!(e3.valid_for(&db));
        assert_eq!(e3.denorm.table().num_live(), 4, "rebuild sees the new row");
    }

    #[test]
    fn rewritability_probe_matches_rewrite_preconditions() {
        let db = star_db();
        let denorm = denormalize(&db, Some("fact")).unwrap();
        let good = astore_sql::sql_to_query(
            "SELECT d_name, sum(f_v) AS s FROM fact, dim WHERE d_rank = 1 GROUP BY d_name",
            &db,
        )
        .unwrap();
        assert!(query_rewritable(&denorm, &good, "fact"));
        // rowid (and key columns) never map onto the wide table.
        let bad = astore_core::query::Query::new()
            .root("fact")
            .filter("fact", astore_core::expr::Pred::eq("rowid", 1))
            .agg(astore_core::query::Aggregate::count("c"));
        assert!(!query_rewritable(&denorm, &bad, "fact"));
    }
}
