//! Server-wide counters and the `{"cmd":"stats"}` report.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use astore_obs::SeqLock;

use crate::cache::PlanCache;
use crate::hist::LatencyHistogram;
use crate::json::Json;

/// Atomic counters shared by every connection and worker.
#[derive(Debug)]
pub struct ServerStats {
    /// Successfully served read queries.
    pub queries: AtomicU64,
    /// Successfully applied write statements.
    pub writes: AtomicU64,
    /// Write statements appended to the write-ahead log.
    pub wal_records: AtomicU64,
    /// Checkpoints taken (explicit or automatic).
    pub checkpoints: AtomicU64,
    /// Group-commit batches published (each batch is one WAL fsync; the
    /// statements it carried are counted by `writes`).
    pub group_commits: AtomicU64,
    /// Sealed segments re-encoded and installed by the background
    /// compactor (write-throughs folded back into the compressed form).
    pub compactions: AtomicU64,
    /// Read queries executed by the morsel-driven parallel executor.
    pub parallel_queries: AtomicU64,
    /// Read queries the planner wanted to fan out but that ran serial
    /// (core budget exhausted, or the final row-count clamp said no).
    pub parallel_denied: AtomicU64,
    /// Fact-table segments read queries actually scanned.
    pub segments_scanned: AtomicU64,
    /// Fact-table segments skipped whole by zone-map pruning.
    pub segments_pruned: AtomicU64,
    /// Statements prepared via `{"prepare":…}` frames.
    pub prepares: AtomicU64,
    /// Statements executed via `{"execute":…}` frames (bind-per-request,
    /// no SQL text parsed).
    pub prepared_execs: AtomicU64,
    /// Requests that returned an error frame (parse/plan/execution).
    pub errors: AtomicU64,
    /// Requests shed by admission control (`server_busy`).
    pub rejected: AtomicU64,
    /// Connections refused because the connection limit was reached.
    pub conn_rejected: AtomicU64,
    /// Currently open connections.
    pub active_connections: AtomicUsize,
    /// Sockets accepted over the server's lifetime (admitted or refused).
    pub accepts_total: AtomicU64,
    /// Times the reactor paused reading a connection because its write
    /// backlog crossed the high watermark.
    pub reads_blocked_on_backpressure: AtomicU64,
    /// Per-connection pipeline depth (queued + in-flight requests)
    /// observed as each complete frame arrived. Depth 1 = no pipelining.
    pub pipeline_depth: LatencyHistogram,
    /// Queue wait per priority class, indexed by
    /// [`Priority`](crate::sched::Priority) discriminant
    /// (metadata / interactive / scan).
    pub queue_wait: [LatencyHistogram; 3],
    /// Router decisions per engine, indexed by
    /// [`EngineChoice`](crate::router::EngineChoice) discriminant
    /// (air / join / denorm).
    pub router_decisions: [AtomicU64; 3],
    /// Routed executions whose observed latency exceeded 1.5× the best
    /// tried arm's estimate — the router believed wrong.
    pub router_mispredictions: AtomicU64,
    /// Observed execution latency per engine, same indexing as
    /// `router_decisions`. Only the engine-execution window is recorded
    /// (bind and frame assembly excluded), so the three engines compare
    /// apples to apples.
    pub engine_latency: [LatencyHistogram; 3],
    /// Resident bytes of the compressed (encoded) sealed segments.
    /// Gauge, not counter: overwritten at boot and after each checkpoint.
    pub encoded_bytes: AtomicU64,
    /// Flat columnar bytes those same sealed segments would occupy raw.
    pub raw_bytes: AtomicU64,
    /// End-to-end statement latency (parse → response built).
    pub latency: LatencyHistogram,
    /// Groups multi-counter updates (e.g. `queries` + `segments_scanned` +
    /// `segments_pruned` of one statement) so [`ServerStats::to_json`]
    /// snapshots either all of an update or none of it — a mid-burst scrape
    /// can no longer report `segments_pruned` ahead of `segments_scanned`.
    pub group: SeqLock,
    started: Instant,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            queries: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            parallel_queries: AtomicU64::new(0),
            parallel_denied: AtomicU64::new(0),
            segments_scanned: AtomicU64::new(0),
            segments_pruned: AtomicU64::new(0),
            prepares: AtomicU64::new(0),
            prepared_execs: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            conn_rejected: AtomicU64::new(0),
            active_connections: AtomicUsize::new(0),
            accepts_total: AtomicU64::new(0),
            reads_blocked_on_backpressure: AtomicU64::new(0),
            pipeline_depth: LatencyHistogram::new(),
            queue_wait: [LatencyHistogram::new(), LatencyHistogram::new(), LatencyHistogram::new()],
            router_decisions: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            router_mispredictions: AtomicU64::new(0),
            engine_latency: [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ],
            encoded_bytes: AtomicU64::new(0),
            raw_bytes: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            group: SeqLock::new(),
            started: Instant::now(),
        }
    }
}

impl ServerStats {
    /// Fresh counters with the uptime clock started now.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Builds the `stats` payload of the wire protocol. The counter loads
    /// run inside a [`SeqLock::read`] retry loop — one cheap pass over all
    /// fifteen counters — so counters updated as one write group appear
    /// coherently even mid-burst.
    pub fn to_json(&self, cache: &PlanCache) -> Json {
        let [queries, writes, wal_records, checkpoints, group_commits, compactions, parallel_queries, parallel_denied, segments_scanned, segments_pruned, prepares, prepared_execs, errors, rejected, conn_rejected] =
            self.group.read(|| {
                [
                    self.queries.load(Ordering::Relaxed),
                    self.writes.load(Ordering::Relaxed),
                    self.wal_records.load(Ordering::Relaxed),
                    self.checkpoints.load(Ordering::Relaxed),
                    self.group_commits.load(Ordering::Relaxed),
                    self.compactions.load(Ordering::Relaxed),
                    self.parallel_queries.load(Ordering::Relaxed),
                    self.parallel_denied.load(Ordering::Relaxed),
                    self.segments_scanned.load(Ordering::Relaxed),
                    self.segments_pruned.load(Ordering::Relaxed),
                    self.prepares.load(Ordering::Relaxed),
                    self.prepared_execs.load(Ordering::Relaxed),
                    self.errors.load(Ordering::Relaxed),
                    self.rejected.load(Ordering::Relaxed),
                    self.conn_rejected.load(Ordering::Relaxed),
                ]
            });
        Json::obj([
            ("uptime_s", Json::Float(self.started.elapsed().as_secs_f64())),
            ("queries", Json::Int(queries as i64)),
            ("writes", Json::Int(writes as i64)),
            ("wal_records", Json::Int(wal_records as i64)),
            ("checkpoints", Json::Int(checkpoints as i64)),
            ("group_commits", Json::Int(group_commits as i64)),
            ("compactions", Json::Int(compactions as i64)),
            ("parallel_queries", Json::Int(parallel_queries as i64)),
            ("parallel_denied", Json::Int(parallel_denied as i64)),
            ("segments_scanned", Json::Int(segments_scanned as i64)),
            ("segments_pruned", Json::Int(segments_pruned as i64)),
            ("prepares", Json::Int(prepares as i64)),
            ("prepared_execs", Json::Int(prepared_execs as i64)),
            ("errors", Json::Int(errors as i64)),
            ("rejected", Json::Int(rejected as i64)),
            ("connections_rejected", Json::Int(conn_rejected as i64)),
            (
                "active_connections",
                Json::Int(self.active_connections.load(Ordering::Relaxed) as i64),
            ),
            // Same gauge under the reactor-era name; `active_connections`
            // stays for callers written against the thread model.
            ("open_connections", Json::Int(self.active_connections.load(Ordering::Relaxed) as i64)),
            ("accepts_total", Json::Int(self.accepts_total.load(Ordering::Relaxed) as i64)),
            (
                "reads_blocked_on_backpressure",
                Json::Int(self.reads_blocked_on_backpressure.load(Ordering::Relaxed) as i64),
            ),
            ("pipeline_depth_count", Json::Int(self.pipeline_depth.count() as i64)),
            ("pipeline_depth_p50", Json::Int(self.pipeline_depth.quantile_us(0.50) as i64)),
            ("pipeline_depth_p99", Json::Int(self.pipeline_depth.quantile_us(0.99) as i64)),
            ("pipeline_depth_max", Json::Int(self.pipeline_depth.max_us() as i64)),
            ("queue_wait", self.queue_wait_json()),
            ("router_decisions", self.router_decisions_json()),
            (
                "router_mispredictions",
                Json::Int(self.router_mispredictions.load(Ordering::Relaxed) as i64),
            ),
            ("engine_latency", self.engine_latency_json()),
            ("encoded_bytes", Json::Int(self.encoded_bytes.load(Ordering::Relaxed) as i64)),
            ("raw_bytes", Json::Int(self.raw_bytes.load(Ordering::Relaxed) as i64)),
            ("cache_hits", Json::Int(cache.hits() as i64)),
            ("cache_misses", Json::Int(cache.misses() as i64)),
            ("cache_hit_rate", Json::Float(cache.hit_rate())),
            ("cached_plans", Json::Int(cache.len() as i64)),
            ("latency_count", Json::Int(self.latency.count() as i64)),
            ("latency_mean_us", Json::Float(self.latency.mean_us())),
            ("latency_p50_us", Json::Int(self.latency.quantile_us(0.50) as i64)),
            ("latency_p99_us", Json::Int(self.latency.quantile_us(0.99) as i64)),
            ("latency_max_us", Json::Int(self.latency.max_us() as i64)),
        ])
    }

    /// The `router_decisions` member of the stats payload: decisions
    /// taken per engine.
    fn router_decisions_json(&self) -> Json {
        Json::obj(crate::router::EngineChoice::ALL.map(|e| {
            (e.as_str(), Json::Int(self.router_decisions[e.index()].load(Ordering::Relaxed) as i64))
        }))
    }

    /// The `engine_latency` member of the stats payload: one object per
    /// engine with count and the monitoring quantiles.
    fn engine_latency_json(&self) -> Json {
        Json::obj(crate::router::EngineChoice::ALL.map(|e| {
            let h = &self.engine_latency[e.index()];
            (
                e.as_str(),
                Json::obj([
                    ("count", Json::Int(h.count() as i64)),
                    ("p50_us", Json::Int(h.quantile_us(0.50) as i64)),
                    ("p99_us", Json::Int(h.quantile_us(0.99) as i64)),
                    ("max_us", Json::Int(h.max_us() as i64)),
                ]),
            )
        }))
    }

    /// The `queue_wait` member of the stats payload: one object per
    /// priority class with count and the monitoring quantiles.
    fn queue_wait_json(&self) -> Json {
        Json::obj(crate::sched::Priority::ALL.map(|p| {
            let h = &self.queue_wait[p as usize];
            (
                p.as_str(),
                Json::obj([
                    ("count", Json::Int(h.count() as i64)),
                    ("p50_us", Json::Int(h.quantile_us(0.50) as i64)),
                    ("p99_us", Json::Int(h.quantile_us(0.99) as i64)),
                    ("max_us", Json::Int(h.max_us() as i64)),
                ]),
            )
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_report_contains_all_fields() {
        let stats = ServerStats::new();
        let cache = PlanCache::default();
        stats.queries.fetch_add(3, Ordering::Relaxed);
        stats.latency.record(100);
        let j = stats.to_json(&cache);
        assert_eq!(j.get("queries").unwrap().as_i64(), Some(3));
        assert_eq!(j.get("latency_count").unwrap().as_i64(), Some(1));
        assert!(j.get("uptime_s").unwrap().as_f64().unwrap() >= 0.0);
        for key in [
            "writes",
            "wal_records",
            "checkpoints",
            "group_commits",
            "compactions",
            "parallel_queries",
            "parallel_denied",
            "segments_scanned",
            "segments_pruned",
            "prepares",
            "prepared_execs",
            "errors",
            "rejected",
            "encoded_bytes",
            "raw_bytes",
            "latency_p99_us",
            "router_mispredictions",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        let decisions = j.get("router_decisions").unwrap();
        let lat = j.get("engine_latency").unwrap();
        for engine in ["air", "join", "denorm"] {
            assert!(decisions.get(engine).unwrap().as_i64().is_some(), "missing {engine}");
            assert!(lat.get(engine).unwrap().get("count").is_some(), "missing {engine} latency");
        }
    }

    #[test]
    fn snapshot_never_tears_a_write_group() {
        // A writer bumps scanned and pruned together under the seqlock
        // (pruned ≤ scanned always holds at group boundaries); a reader
        // snapshotting concurrently must never see pruned > scanned.
        let stats = std::sync::Arc::new(ServerStats::new());
        let cache = PlanCache::default();
        std::thread::scope(|s| {
            let w = std::sync::Arc::clone(&stats);
            s.spawn(move || {
                for _ in 0..20_000 {
                    let _g = w.group.begin_write();
                    // Pruned first: an ungrouped reader between these two
                    // adds would observe the invariant violated.
                    w.segments_pruned.fetch_add(1, Ordering::Relaxed);
                    w.segments_scanned.fetch_add(1, Ordering::Relaxed);
                }
            });
            for _ in 0..500 {
                let j = stats.to_json(&cache);
                let scanned = j.get("segments_scanned").unwrap().as_i64().unwrap();
                let pruned = j.get("segments_pruned").unwrap().as_i64().unwrap();
                assert!(pruned <= scanned, "torn snapshot: pruned={pruned} scanned={scanned}");
            }
        });
    }
}
