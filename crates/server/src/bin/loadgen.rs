//! `loadgen` — hammer an astore-server with N connections × M mixed SSB
//! queries and print a JSON throughput/latency summary (BENCH_server.json
//! format).
//!
//! ```text
//! loadgen --self-host --sf 0.01 --connections 8 --queries 150
//! loadgen --addr 127.0.0.1:3939 --connections 16 --queries 500 --write-every 50
//! loadgen --self-host --prepared          # text pass + prepare/execute pass, with deltas
//! ```
//!
//! The query mix rotates SSB flights 1–4 **with varying predicate
//! literals** — the workload the parameter-aware plan cache exists for. In
//! text mode each request is a fresh SQL string (the server canonicalizes
//! it to a shared template); with `--prepared` a second pass runs the same
//! workload over protocol v2 (`prepare` once per connection, `execute`
//! frames with bound parameters — no SQL text on the hot path) and the
//! summary reports q/s and cache hit-rate deltas between the two modes.
//!
//! Besides the client-side aggregates, the summary's `server_templates`
//! member carries the *server's* per-template latency histograms (count,
//! p50/p99/max in µs per canonical statement template) so per-query-shape
//! regressions are visible without client/transport noise.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use astore_server::hist::LatencyHistogram;
use astore_server::json::Json;
use astore_server::{start, Client, Durability, Engine, ServerConfig};
use astore_storage::snapshot::SharedDatabase;

/// One workload entry: a `?`-placeholder template plus rotating parameter
/// sets (written as SQL literals; quoted values are strings). Text mode
/// substitutes them into the template client-side, prepared mode binds
/// them over the wire — both modes run the same logical queries.
struct MixEntry {
    name: &'static str,
    template: &'static str,
    param_sets: &'static [&'static [&'static str]],
}

const MIX: &[MixEntry] = &[
    MixEntry {
        name: "Q1.1",
        template: "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
                   WHERE lo_orderdate = d_datekey AND d_year = ? \
                     AND lo_discount BETWEEN ? AND ? AND lo_quantity < ?",
        param_sets: &[
            &["1993", "1", "3", "25"],
            &["1994", "2", "4", "30"],
            &["1995", "3", "5", "35"],
            &["1992", "1", "2", "20"],
        ],
    },
    MixEntry {
        name: "Q1.2",
        template: "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
                   WHERE lo_orderdate = d_datekey AND d_yearmonthnum = ? \
                     AND lo_discount BETWEEN ? AND ? AND lo_quantity BETWEEN ? AND ?",
        param_sets: &[&["199401", "4", "6", "26", "35"], &["199402", "5", "7", "20", "30"]],
    },
    MixEntry {
        name: "Q2.1",
        template: "SELECT d_year, p_brand1, sum(lo_revenue) AS revenue \
                   FROM lineorder, date, part, supplier \
                   WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
                     AND lo_suppkey = s_suppkey AND p_category = ? AND s_region = ? \
                   GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1",
        param_sets: &[&["'MFGR#12'", "'AMERICA'"], &["'MFGR#13'", "'ASIA'"]],
    },
    MixEntry {
        name: "Q3.1",
        template: "SELECT c_nation, s_nation, d_year, sum(lo_revenue) AS revenue \
                   FROM customer, lineorder, supplier, date \
                   WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
                     AND lo_orderdate = d_datekey AND c_region = ? AND s_region = ? \
                     AND d_year >= ? AND d_year <= ? \
                   GROUP BY c_nation, s_nation, d_year ORDER BY d_year ASC, revenue DESC",
        param_sets: &[
            &["'ASIA'", "'ASIA'", "1992", "1997"],
            &["'AMERICA'", "'AMERICA'", "1993", "1996"],
        ],
    },
    MixEntry {
        name: "Q4.1",
        template: "SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit \
                   FROM date, customer, supplier, part, lineorder \
                   WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
                     AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
                     AND c_region = ? AND s_region = ? \
                     AND (p_mfgr = ? OR p_mfgr = ?) \
                   GROUP BY d_year, c_nation ORDER BY d_year, c_nation",
        param_sets: &[&["'AMERICA'", "'AMERICA'", "'MFGR#1'", "'MFGR#2'"]],
    },
    MixEntry {
        name: "full-scan",
        template: "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
                   WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
        param_sets: &[&[]],
    },
];

/// The write statement used when `--write-every` is active. Targets rotate
/// over [`WRITE_ROWS`] customer rows and a handful of segment values so a
/// mixed workload exercises many rows, not one hot cell.
const WRITE_TEMPLATE: &str = "UPDATE customer SET c_mktsegment = ? WHERE rowid = ?";
const WRITE_SEGMENTS: &[&str] = &["MACHINERY", "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD"];
/// Rows 0..WRITE_ROWS are update targets; present at any sf ≥ 0.01.
const WRITE_ROWS: usize = 100;

/// The rotating parameters of the i-th write on connection `conn_id`.
fn write_params(conn_id: usize, i: usize) -> (&'static str, usize) {
    let k = conn_id.wrapping_mul(31).wrapping_add(i);
    (WRITE_SEGMENTS[k % WRITE_SEGMENTS.len()], k % WRITE_ROWS)
}

/// Substitutes the n-th `?` of `template` with `params[n]` (text mode).
fn substitute(template: &str, params: &[&str]) -> String {
    let mut out = String::with_capacity(template.len() + 16);
    let mut it = params.iter();
    for c in template.chars() {
        if c == '?' {
            out.push_str(it.next().expect("param set matches placeholder count"));
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses a SQL-literal parameter into its wire (JSON) form.
fn literal_to_json(lit: &str) -> Json {
    if let Some(stripped) = lit.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
        Json::Str(stripped.replace("''", "'"))
    } else if let Ok(i) = lit.parse::<i64>() {
        Json::Int(i)
    } else {
        Json::Float(lit.parse::<f64>().expect("numeric literal"))
    }
}

struct Args {
    addr: Option<String>,
    sf: f64,
    seed: u64,
    connections: usize,
    queries: usize,
    write_every: usize,
    workers: usize,
    prepared: bool,
    durable: bool,
    /// Fraction of `connections` that connect, probe once, then just hold
    /// their socket open for the whole run (connection-scale mode).
    idle_fraction: f64,
    /// Self-host admission queue depth override (0 = auto). Small values
    /// force `server_busy` shedding under the hot core — the graceful
    /// degradation the connection-scale bench measures.
    queue: usize,
}

/// Per-mix-query zone-pruning totals accumulated over one pass.
#[derive(Debug, Default)]
struct PruneAgg {
    executions: AtomicU64,
    segments_scanned: AtomicU64,
    segments_pruned: AtomicU64,
}

/// Aggregate metrics of one load pass.
struct PassMetrics {
    label: &'static str,
    hist: LatencyHistogram,
    /// Read-statement latency only.
    read_hist: LatencyHistogram,
    /// Write-statement latency only.
    write_hist: LatencyHistogram,
    elapsed_s: f64,
    ok: u64,
    busy: u64,
    errors: u64,
    /// Plan-cache hit rate over exactly this pass (server counter deltas).
    cache_hit_rate: f64,
    /// Zone-pruning totals per mix query, in `MIX` order.
    pruning: Vec<PruneAgg>,
}

/// The per-class (read or write) summary block: count, throughput, tail.
fn class_json(hist: &LatencyHistogram, elapsed_s: f64) -> Json {
    Json::obj([
        ("count", Json::Int(hist.count() as i64)),
        ("per_s", Json::Float(hist.count() as f64 / elapsed_s.max(1e-9))),
        ("latency_mean_us", Json::Float(hist.mean_us())),
        ("latency_p50_us", Json::Int(hist.quantile_us(0.50) as i64)),
        ("latency_p99_us", Json::Int(hist.quantile_us(0.99) as i64)),
        ("latency_max_us", Json::Int(hist.max_us() as i64)),
    ])
}

impl PassMetrics {
    fn to_json(&self) -> Json {
        let pruning: Vec<Json> = MIX
            .iter()
            .zip(&self.pruning)
            .map(|(entry, agg)| {
                Json::obj([
                    ("query", Json::Str(entry.name.into())),
                    ("executions", Json::Int(agg.executions.load(Ordering::Relaxed) as i64)),
                    (
                        "segments_scanned",
                        Json::Int(agg.segments_scanned.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "segments_pruned",
                        Json::Int(agg.segments_pruned.load(Ordering::Relaxed) as i64),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("mode", Json::Str(self.label.into())),
            ("queries_ok", Json::Int(self.ok as i64)),
            ("rejected_busy", Json::Int(self.busy as i64)),
            ("errors", Json::Int(self.errors as i64)),
            ("elapsed_s", Json::Float(self.elapsed_s)),
            ("qps", Json::Float(self.ok as f64 / self.elapsed_s.max(1e-9))),
            ("cache_hit_rate_pass", Json::Float(self.cache_hit_rate)),
            ("latency_mean_us", Json::Float(self.hist.mean_us())),
            ("latency_p50_us", Json::Int(self.hist.quantile_us(0.50) as i64)),
            ("latency_p99_us", Json::Int(self.hist.quantile_us(0.99) as i64)),
            ("latency_max_us", Json::Int(self.hist.max_us() as i64)),
            ("reads", class_json(&self.read_hist, self.elapsed_s)),
            ("writes", class_json(&self.write_hist, self.elapsed_s)),
            ("pruning", Json::Array(pruning)),
        ])
    }
}

fn cache_counters(addr: &str) -> (u64, u64) {
    let stats = Client::connect(addr).ok().and_then(|mut c| c.stats().ok());
    let get =
        |k: &str| stats.as_ref().and_then(|s| s.get(k)).and_then(Json::as_i64).unwrap_or(0) as u64;
    (get("cache_hits"), get("cache_misses"))
}

/// Opens `n` idle connections. Each measures the connect → first-response
/// round trip (the accept-latency probe: a TCP handshake plus one
/// `{"cmd":"stats"}` frame through the full server path), then parks its
/// socket until the run ends — standing connection load for the reactor.
/// Returns the held sockets, the accept-latency histogram, and how many
/// connections the server refused.
fn open_idle(addr: &str, n: usize) -> (Vec<Client>, LatencyHistogram, u64) {
    let hist = LatencyHistogram::new();
    let mut held = Vec::with_capacity(n);
    let mut refused = 0u64;
    for _ in 0..n {
        let t = Instant::now();
        match Client::connect(addr) {
            Ok(mut c) => match c.stats() {
                Ok(_) => {
                    hist.record(t.elapsed().as_micros() as u64);
                    held.push(c);
                }
                Err(_) => refused += 1,
            },
            Err(_) => refused += 1,
        }
    }
    (held, hist, refused)
}

/// Runs one pass of the workload: every one of `conns` connections issues
/// `queries` statements from the rotating mix, in text or prepared mode.
fn run_pass(addr: &str, a: &Args, conns: usize, prepared: bool) -> PassMetrics {
    let hist = Arc::new(LatencyHistogram::new());
    let read_hist = Arc::new(LatencyHistogram::new());
    let write_hist = Arc::new(LatencyHistogram::new());
    let errors = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let pruning: Arc<Vec<PruneAgg>> = Arc::new(MIX.iter().map(|_| PruneAgg::default()).collect());
    let (hits0, misses0) = cache_counters(addr);
    let t_run = Instant::now();
    std::thread::scope(|s| {
        for conn_id in 0..conns {
            let hist = Arc::clone(&hist);
            let read_hist = Arc::clone(&read_hist);
            let write_hist = Arc::clone(&write_hist);
            let errors = Arc::clone(&errors);
            let busy = Arc::clone(&busy);
            let pruning = Arc::clone(&pruning);
            s.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("conn {conn_id}: connect failed: {e}");
                        errors.fetch_add(a.queries as u64, Ordering::Relaxed);
                        return;
                    }
                };
                // Prepared mode: plan each template (and the write) once.
                let mut stmt_ids: Vec<u64> = Vec::new();
                let mut write_id = 0u64;
                if prepared {
                    for entry in MIX {
                        match client.prepare(entry.template) {
                            Ok(r) if r.get("ok").and_then(Json::as_bool) == Some(true) => {
                                stmt_ids
                                    .push(r.get("stmt_id").unwrap().as_i64().unwrap_or(0) as u64);
                            }
                            other => {
                                eprintln!("conn {conn_id}: prepare failed: {other:?}");
                                errors.fetch_add(a.queries as u64, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                    if a.write_every > 0 {
                        match client.prepare(WRITE_TEMPLATE) {
                            Ok(r) if r.get("ok").and_then(Json::as_bool) == Some(true) => {
                                write_id = r.get("stmt_id").unwrap().as_i64().unwrap_or(0) as u64;
                            }
                            other => {
                                eprintln!("conn {conn_id}: write prepare failed: {other:?}");
                                errors.fetch_add(a.queries as u64, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                }
                for i in 0..a.queries {
                    let is_write = a.write_every > 0 && i % a.write_every == a.write_every - 1;
                    let (mix_idx, entry) = {
                        let idx = (conn_id + i) % MIX.len();
                        (idx, &MIX[idx])
                    };
                    let params = entry.param_sets[i % entry.param_sets.len()];
                    let t = Instant::now();
                    let resp = if is_write {
                        let (seg, row) = write_params(conn_id, i);
                        if prepared {
                            client.execute(
                                write_id,
                                vec![Json::Str(seg.into()), Json::Int(row as i64)],
                            )
                        } else {
                            let seg_lit = format!("'{seg}'");
                            let row_lit = row.to_string();
                            client.sql(&substitute(WRITE_TEMPLATE, &[&seg_lit, &row_lit]))
                        }
                    } else if prepared {
                        client.execute(
                            stmt_ids[mix_idx],
                            params.iter().map(|p| literal_to_json(p)).collect(),
                        )
                    } else {
                        client.sql(&substitute(entry.template, params))
                    };
                    match resp {
                        Ok(resp) if resp.get("ok").and_then(Json::as_bool) == Some(true) => {
                            let us = t.elapsed().as_micros() as u64;
                            hist.record(us);
                            if is_write {
                                write_hist.record(us);
                            } else {
                                read_hist.record(us);
                                let get = |k: &str| {
                                    resp.get(k).and_then(Json::as_i64).unwrap_or(0) as u64
                                };
                                let agg = &pruning[mix_idx];
                                agg.executions.fetch_add(1, Ordering::Relaxed);
                                agg.segments_scanned
                                    .fetch_add(get("segments_scanned"), Ordering::Relaxed);
                                agg.segments_pruned
                                    .fetch_add(get("segments_pruned"), Ordering::Relaxed);
                            }
                        }
                        Ok(resp) => {
                            if resp.get("code").and_then(Json::as_str) == Some("server_busy") {
                                busy.fetch_add(1, Ordering::Relaxed);
                            } else {
                                eprintln!("conn {conn_id}: error frame: {resp}");
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("conn {conn_id}: transport error: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    let elapsed_s = t_run.elapsed().as_secs_f64();
    let (hits1, misses1) = cache_counters(addr);
    let (dh, dm) = (hits1.saturating_sub(hits0), misses1.saturating_sub(misses0));
    let cache_hit_rate = if dh + dm == 0 { 0.0 } else { dh as f64 / (dh + dm) as f64 };
    let hist = Arc::try_unwrap(hist).expect("threads joined");
    let read_hist = Arc::try_unwrap(read_hist).expect("threads joined");
    let write_hist = Arc::try_unwrap(write_hist).expect("threads joined");
    let pruning = Arc::try_unwrap(pruning).expect("threads joined");
    PassMetrics {
        label: if prepared { "prepared" } else { "text" },
        elapsed_s,
        ok: hist.count(),
        hist,
        read_hist,
        write_hist,
        busy: busy.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        cache_hit_rate,
        pruning,
    }
}

fn main() {
    let mut a = Args {
        addr: None,
        sf: 0.01,
        seed: 42,
        connections: 8,
        queries: 150,
        write_every: 0,
        workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        prepared: false,
        durable: false,
        idle_fraction: 0.0,
        queue: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => a.addr = Some(value("--addr")),
            "--self-host" => a.addr = None,
            "--sf" => a.sf = parse_or_die(&value("--sf"), "--sf"),
            "--seed" => a.seed = parse_or_die(&value("--seed"), "--seed"),
            "--connections" => {
                a.connections = parse_or_die(&value("--connections"), "--connections")
            }
            "--queries" => a.queries = parse_or_die(&value("--queries"), "--queries"),
            "--write-every" => {
                a.write_every = parse_or_die(&value("--write-every"), "--write-every")
            }
            "--workers" => a.workers = parse_or_die(&value("--workers"), "--workers"),
            "--prepared" => a.prepared = true,
            "--durable" => a.durable = true,
            "--idle-fraction" => {
                a.idle_fraction = parse_or_die(&value("--idle-fraction"), "--idle-fraction")
            }
            "--queue" => a.queue = parse_or_die(&value("--queue"), "--queue"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
    }

    if a.durable && a.addr.is_some() {
        eprintln!("--durable only applies to self-host mode (drop --addr)");
        exit(2);
    }
    if !(0.0..=1.0).contains(&a.idle_fraction) {
        eprintln!("--idle-fraction must be in [0, 1]");
        exit(2);
    }

    // Self-host mode: spin up an in-process server on a free port.
    let mut durable_dir: Option<std::path::PathBuf> = None;
    let handle = match &a.addr {
        Some(_) => None,
        None => {
            eprintln!("self-hosting: loading SSB sf={} seed={} …", a.sf, a.seed);
            let db = astore_datagen::ssb::generate(a.sf, a.seed);
            let mut engine = Engine::new(SharedDatabase::new(db));
            if a.durable {
                // A throwaway data dir so writes run the real WAL +
                // group-commit fsync path; removed again on exit.
                let dir =
                    std::env::temp_dir().join(format!("astore-loadgen-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&dir);
                let snap = engine.database().snapshot();
                let wal = astore_persist::store::bootstrap(&dir, &snap).unwrap_or_else(|e| {
                    eprintln!("failed to initialize durable dir: {e}");
                    exit(1);
                });
                eprintln!("durable: WAL + snapshot in {}", dir.display());
                engine = engine.durable(Durability::new(&dir, wal, 0));
                durable_dir = Some(dir);
            }
            let engine = Arc::new(engine);
            let config = ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: a.workers,
                queue_depth: if a.queue > 0 { a.queue } else { a.workers * 4 + a.connections },
                max_connections: a.connections + 8,
                ..ServerConfig::default()
            };
            let h = start(engine, config).unwrap_or_else(|e| {
                eprintln!("failed to start in-process server: {e}");
                exit(1);
            });
            eprintln!("in-process server on {}", h.addr());
            Some(h)
        }
    };
    let addr: String = match (&a.addr, &handle) {
        (Some(addr), _) => addr.clone(),
        (None, Some(h)) => h.addr().to_string(),
        _ => unreachable!(),
    };

    // Connection-scale mode: a fraction of the connections just hold
    // sockets open (probing accept latency on the way in) while the rest
    // run the query mix — the reactor serves the hot core amid a standing
    // crowd of idle sessions.
    let n_idle = (a.connections as f64 * a.idle_fraction).round() as usize;
    let n_hot = a.connections - n_idle;
    let (idle_held, accept_hist, accept_refused) = open_idle(&addr, n_idle);
    if n_idle > 0 {
        eprintln!("holding {} idle connections ({accept_refused} refused)", idle_held.len());
    }

    let text = run_pass(&addr, &a, n_hot, false);
    let prepared = a.prepared.then(|| run_pass(&addr, &a, n_hot, true));

    let server_stats = Client::connect(addr.as_str()).ok().and_then(|mut c| c.stats().ok());
    // Server-side per-template latency (p50/p99 from the server's own
    // histograms, keyed by canonical template) — measured where the
    // statement ran, free of client/transport noise, and shared across
    // the text and prepared passes since both canonicalize to the same
    // templates.
    let server_templates = server_stats
        .as_ref()
        .and_then(|s| s.get("templates"))
        .cloned()
        .unwrap_or(Json::Array(Vec::new()));
    // Top-level fields mirror the text pass (the BENCH_server.json shape
    // older tooling reads); the prepared pass and deltas nest below.
    let mut summary = Json::obj([
        ("bench", Json::Str("astore-server loadgen".into())),
        ("addr", Json::Str(addr)),
        (
            "dataset",
            Json::Str(if a.addr.is_some() {
                "(remote)".into()
            } else if a.durable {
                format!("ssb sf={} (durable)", a.sf)
            } else {
                format!("ssb sf={}", a.sf)
            }),
        ),
        ("seed", Json::Int(a.seed as i64)),
        ("connections", Json::Int(a.connections as i64)),
        ("queries_per_connection", Json::Int(a.queries as i64)),
        ("queries_ok", Json::Int(text.ok as i64)),
        ("rejected_busy", Json::Int(text.busy as i64)),
        ("errors", Json::Int(text.errors as i64)),
        ("elapsed_s", Json::Float(text.elapsed_s)),
        ("qps", Json::Float(text.ok as f64 / text.elapsed_s.max(1e-9))),
        ("latency_mean_us", Json::Float(text.hist.mean_us())),
        ("latency_p50_us", Json::Int(text.hist.quantile_us(0.50) as i64)),
        ("latency_p99_us", Json::Int(text.hist.quantile_us(0.99) as i64)),
        ("latency_max_us", Json::Int(text.hist.max_us() as i64)),
        ("text", text.to_json()),
        ("server", server_stats.unwrap_or(Json::Null)),
        ("server_templates", server_templates),
    ]);
    if n_idle > 0 {
        if let Json::Object(m) = &mut summary {
            m.insert("hot_connections".into(), Json::Int(n_hot as i64));
            m.insert("idle_connections".into(), Json::Int(idle_held.len() as i64));
            m.insert(
                "accept".into(),
                Json::obj([
                    ("count", Json::Int(accept_hist.count() as i64)),
                    ("refused", Json::Int(accept_refused as i64)),
                    ("latency_p50_us", Json::Int(accept_hist.quantile_us(0.50) as i64)),
                    ("latency_p99_us", Json::Int(accept_hist.quantile_us(0.99) as i64)),
                    ("latency_max_us", Json::Int(accept_hist.max_us() as i64)),
                ]),
            );
        }
    }
    let mut total_errors = text.errors;
    if let Some(p) = &prepared {
        total_errors += p.errors;
        let qps_text = text.ok as f64 / text.elapsed_s.max(1e-9);
        let qps_prep = p.ok as f64 / p.elapsed_s.max(1e-9);
        if let Json::Object(m) = &mut summary {
            m.insert("prepared".into(), p.to_json());
            m.insert(
                "delta".into(),
                Json::obj([
                    ("qps_ratio_prepared_vs_text", Json::Float(qps_prep / qps_text.max(1e-9))),
                    ("cache_hit_rate_text", Json::Float(text.cache_hit_rate)),
                    ("cache_hit_rate_prepared", Json::Float(p.cache_hit_rate)),
                    (
                        "p50_us_prepared_minus_text",
                        Json::Int(
                            p.hist.quantile_us(0.50) as i64 - text.hist.quantile_us(0.50) as i64,
                        ),
                    ),
                ]),
            );
        }
    }
    println!("{summary}");

    drop(idle_held);
    if let Some(h) = handle {
        h.shutdown();
    }
    if let Some(dir) = durable_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    if total_errors > 0 {
        exit(1);
    }
}

fn parse_or_die<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}");
        exit(2);
    })
}

const USAGE: &str = "\
loadgen — astore-server load generator (prints a JSON summary to stdout)

flags:
  --addr <host:port>   target server (default: self-host in-process)
  --self-host          spawn an in-process server (the default)
  --sf <f>             SSB scale factor for self-host   (default 0.01)
  --seed <n>           dataset generation seed, recorded in the summary
                       so runs are reproducible          (default 42)
  --connections <n>    concurrent client connections    (default 8)
  --idle-fraction <f>  fraction of connections that connect, probe once
                       (recording the accept-latency round trip) and then
                       hold their socket open idle for the whole run; the
                       rest run the query mix. Connection-scale mode: the
                       summary gains accept-latency percentiles, refused
                       counts and idle/hot splits (default 0)
  --queries <n>        statements per connection        (default 150)
  --write-every <n>    make every n-th statement a write (default 0 = reads only;
                       2 = a 50/50 read/write mix); writes rotate over 100
                       customer rows and report separately under \"writes\"
  --durable            self-host with a throwaway data dir so writes hit the
                       real WAL + group-commit fsync path (removed on exit)
  --workers <n>        self-host worker threads         (default: cores)
  --queue <n>          self-host admission queue depth  (default: auto =
                       4*workers + connections); small values force
                       server_busy shedding, which the summary reports
                       under \"rejected_busy\" without failing the run
  --prepared           after the text pass, run the same workload over
                       protocol v2 (prepare/execute frames) and report
                       q/s + plan-cache hit-rate deltas between the modes";
