//! `loadgen` — hammer an astore-server with N connections × M mixed SSB
//! queries and print a JSON throughput/latency summary (BENCH_server.json
//! format).
//!
//! ```text
//! loadgen --self-host --sf 0.01 --connections 8 --queries 150
//! loadgen --addr 127.0.0.1:3939 --connections 16 --queries 500 --write-every 50
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use astore_server::hist::LatencyHistogram;
use astore_server::json::Json;
use astore_server::{start, Client, Engine, ServerConfig};
use astore_storage::snapshot::SharedDatabase;

/// The repeated-query mix: a rotation of SSB flights 1–4. Six distinct
/// statements, so a run of hundreds of queries per connection exercises the
/// plan cache hard (steady-state hit rate → 100%).
const MIX: &[&str] = &[
    "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
     WHERE lo_orderdate = d_datekey AND d_year = 1993 \
       AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25",
    "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
     WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199401 \
       AND lo_discount BETWEEN 4 AND 6 AND lo_quantity BETWEEN 26 AND 35",
    "SELECT d_year, p_brand1, sum(lo_revenue) AS revenue \
     FROM lineorder, date, part, supplier \
     WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
       AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' AND s_region = 'AMERICA' \
     GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1",
    "SELECT c_nation, s_nation, d_year, sum(lo_revenue) AS revenue \
     FROM customer, lineorder, supplier, date \
     WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
       AND lo_orderdate = d_datekey AND c_region = 'ASIA' AND s_region = 'ASIA' \
       AND d_year >= 1992 AND d_year <= 1997 \
     GROUP BY c_nation, s_nation, d_year ORDER BY d_year ASC, revenue DESC",
    "SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit \
     FROM date, customer, supplier, part, lineorder \
     WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
       AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
       AND c_region = 'AMERICA' AND s_region = 'AMERICA' \
       AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') \
     GROUP BY d_year, c_nation ORDER BY d_year, c_nation",
    "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
     WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
];

struct Args {
    addr: Option<String>,
    sf: f64,
    connections: usize,
    queries: usize,
    write_every: usize,
    workers: usize,
}

fn main() {
    let mut a = Args {
        addr: None,
        sf: 0.01,
        connections: 8,
        queries: 150,
        write_every: 0,
        workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => a.addr = Some(value("--addr")),
            "--self-host" => a.addr = None,
            "--sf" => a.sf = parse_or_die(&value("--sf"), "--sf"),
            "--connections" => {
                a.connections = parse_or_die(&value("--connections"), "--connections")
            }
            "--queries" => a.queries = parse_or_die(&value("--queries"), "--queries"),
            "--write-every" => {
                a.write_every = parse_or_die(&value("--write-every"), "--write-every")
            }
            "--workers" => a.workers = parse_or_die(&value("--workers"), "--workers"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
    }

    // Self-host mode: spin up an in-process server on a free port.
    let handle = match &a.addr {
        Some(_) => None,
        None => {
            eprintln!("self-hosting: loading SSB sf={} …", a.sf);
            let db = astore_datagen::ssb::generate(a.sf, 42);
            let engine = Arc::new(Engine::new(SharedDatabase::new(db)));
            let config = ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: a.workers,
                queue_depth: a.workers * 4 + a.connections,
                max_connections: a.connections + 8,
            };
            let h = start(engine, config).unwrap_or_else(|e| {
                eprintln!("failed to start in-process server: {e}");
                exit(1);
            });
            eprintln!("in-process server on {}", h.addr());
            Some(h)
        }
    };
    let addr: String = match (&a.addr, &handle) {
        (Some(addr), _) => addr.clone(),
        (None, Some(h)) => h.addr().to_string(),
        _ => unreachable!(),
    };

    let hist = Arc::new(LatencyHistogram::new());
    let errors = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let t_run = Instant::now();
    std::thread::scope(|s| {
        for conn_id in 0..a.connections {
            let addr = addr.clone();
            let hist = Arc::clone(&hist);
            let errors = Arc::clone(&errors);
            let busy = Arc::clone(&busy);
            let a = &a;
            s.spawn(move || {
                let mut client = match Client::connect(addr.as_str()) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("conn {conn_id}: connect failed: {e}");
                        errors.fetch_add(a.queries as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for i in 0..a.queries {
                    let is_write = a.write_every > 0 && i % a.write_every == a.write_every - 1;
                    let sql = if is_write {
                        // Harmless single-row dimension churn: flip a known
                        // customer field back and forth.
                        "UPDATE customer SET c_mktsegment = 'MACHINERY' WHERE rowid = 0".to_owned()
                    } else {
                        MIX[(conn_id + i) % MIX.len()].to_owned()
                    };
                    let t = Instant::now();
                    match client.sql(&sql) {
                        Ok(resp) if resp.get("ok").and_then(Json::as_bool) == Some(true) => {
                            hist.record(t.elapsed().as_micros() as u64);
                        }
                        Ok(resp) => {
                            if resp.get("code").and_then(Json::as_str) == Some("server_busy") {
                                busy.fetch_add(1, Ordering::Relaxed);
                            } else {
                                eprintln!("conn {conn_id}: error frame: {resp}");
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("conn {conn_id}: transport error: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    let elapsed = t_run.elapsed();

    let server_stats = Client::connect(addr.as_str()).ok().and_then(|mut c| c.stats().ok());
    let ok_queries = hist.count();
    let summary = Json::obj([
        ("bench", Json::Str("astore-server loadgen".into())),
        ("addr", Json::Str(addr)),
        (
            "dataset",
            Json::Str(if a.addr.is_some() {
                "(remote)".into()
            } else {
                format!("ssb sf={}", a.sf)
            }),
        ),
        ("connections", Json::Int(a.connections as i64)),
        ("queries_per_connection", Json::Int(a.queries as i64)),
        ("queries_ok", Json::Int(ok_queries as i64)),
        ("rejected_busy", Json::Int(busy.load(Ordering::Relaxed) as i64)),
        ("errors", Json::Int(errors.load(Ordering::Relaxed) as i64)),
        ("elapsed_s", Json::Float(elapsed.as_secs_f64())),
        ("qps", Json::Float(ok_queries as f64 / elapsed.as_secs_f64())),
        ("latency_mean_us", Json::Float(hist.mean_us())),
        ("latency_p50_us", Json::Int(hist.quantile_us(0.50) as i64)),
        ("latency_p99_us", Json::Int(hist.quantile_us(0.99) as i64)),
        ("latency_max_us", Json::Int(hist.max_us() as i64)),
        ("server", server_stats.unwrap_or(Json::Null)),
    ]);
    println!("{summary}");

    if let Some(h) = handle {
        h.shutdown();
    }
    if errors.load(Ordering::Relaxed) > 0 {
        exit(1);
    }
}

fn parse_or_die<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}");
        exit(2);
    })
}

const USAGE: &str = "\
loadgen — astore-server load generator (prints a JSON summary to stdout)

flags:
  --addr <host:port>   target server (default: self-host in-process)
  --self-host          spawn an in-process server (the default)
  --sf <f>             SSB scale factor for self-host   (default 0.01)
  --connections <n>    concurrent client connections    (default 8)
  --queries <n>        statements per connection        (default 150)
  --write-every <n>    make every n-th statement a write (default 0 = reads only)
  --workers <n>        self-host worker threads         (default: cores)";
