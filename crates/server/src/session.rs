//! Per-session prepared-statement registry for wire protocol v2.
//!
//! Each connection owns one [`StatementRegistry`]: `{"prepare":…}` frames
//! register a [`Prepared`] template under a session-local id, and
//! `{"execute":{"id":…,"params":[…]}}` frames look it up — so the hot path
//! binds parameters into an already-planned template instead of re-parsing
//! SQL text. The registry is bounded: preparing past the capacity evicts
//! the oldest statement (FIFO), and executing an evicted id is a typed
//! `unknown_statement` error, never unbounded memory.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use astore_sql::prepared::Prepared;

/// Default per-session statement capacity.
pub const DEFAULT_STATEMENTS_PER_SESSION: usize = 64;

/// Registries currently alive in this process. Connection teardown must
/// drop the session registry promptly — tests assert this count returns to
/// its baseline after open/close churn, so a leak in either io model's
/// lifecycle shows up as a number, not an OOM.
static LIVE_REGISTRIES: AtomicUsize = AtomicUsize::new(0);

/// Number of [`StatementRegistry`] values currently alive.
pub fn live_registries() -> usize {
    LIVE_REGISTRIES.load(Ordering::SeqCst)
}

/// A registered statement: the planned template plus the canonical key it
/// was planned under — the key labels this statement's executions in the
/// per-template latency metrics and the slow-query log.
#[derive(Debug, Clone)]
pub struct SessionStatement {
    /// Canonical statement-template text (the plan-cache key).
    pub key: Arc<str>,
    /// The planned, bindable template.
    pub prepared: Arc<Prepared>,
}

/// A bounded id → prepared-statement map, one per connection. Also carries
/// the session's engine pin (`SET engine=...`): per-connection state the
/// adaptive router consults before its own learned policy.
#[derive(Debug)]
pub struct StatementRegistry {
    stmts: HashMap<u64, SessionStatement>,
    order: VecDeque<u64>,
    next_id: u64,
    capacity: usize,
    engine_pin: Option<crate::router::EngineChoice>,
}

impl Default for StatementRegistry {
    fn default() -> Self {
        StatementRegistry::with_capacity(DEFAULT_STATEMENTS_PER_SESSION)
    }
}

impl StatementRegistry {
    /// A registry holding at most `capacity` statements.
    pub fn with_capacity(capacity: usize) -> Self {
        LIVE_REGISTRIES.fetch_add(1, Ordering::SeqCst);
        StatementRegistry {
            stmts: HashMap::new(),
            order: VecDeque::new(),
            next_id: 1,
            capacity: capacity.max(1),
            engine_pin: None,
        }
    }

    /// The session's engine pin (`SET engine=...`); `None` = adaptive.
    pub fn engine_pin(&self) -> Option<crate::router::EngineChoice> {
        self.engine_pin
    }

    /// Pins (or, with `None`, unpins) this session's execution engine.
    pub fn set_engine_pin(&mut self, pin: Option<crate::router::EngineChoice>) {
        self.engine_pin = pin;
    }

    /// Registers a statement under its canonical-template key, returning
    /// its fresh id and the id of the statement evicted to make room (if
    /// the registry was full).
    pub fn register(
        &mut self,
        key: impl Into<Arc<str>>,
        stmt: Arc<Prepared>,
    ) -> (u64, Option<u64>) {
        let id = self.next_id;
        self.next_id += 1;
        self.stmts.insert(id, SessionStatement { key: key.into(), prepared: stmt });
        self.order.push_back(id);
        let evicted = if self.order.len() > self.capacity {
            self.order.pop_front().inspect(|old| {
                self.stmts.remove(old);
            })
        } else {
            None
        };
        (id, evicted)
    }

    /// Looks up a statement by id.
    pub fn get(&self, id: u64) -> Option<SessionStatement> {
        self.stmts.get(&id).cloned()
    }

    /// Deallocates a statement; `false` if the id was unknown (or already
    /// evicted).
    pub fn close(&mut self, id: u64) -> bool {
        let existed = self.stmts.remove(&id).is_some();
        if existed {
            self.order.retain(|x| *x != id);
        }
        existed
    }

    /// Number of registered statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Returns `true` if no statements are registered.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

impl Drop for StatementRegistry {
    fn drop(&mut self) {
        LIVE_REGISTRIES.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::catalog::Database;
    use astore_storage::table::{ColumnDef, Schema, Table};
    use astore_storage::types::{DataType, Value};

    fn prepared() -> Arc<Prepared> {
        let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        t.append_row(&[Value::Int(1)]);
        let mut db = Database::new();
        db.add_table(t);
        Arc::new(astore_sql::prepare("SELECT count(*) FROM t", &db).unwrap())
    }

    #[test]
    fn register_get_close() {
        let mut r = StatementRegistry::default();
        let (id, evicted) = r.register("select count(*) from t", prepared());
        assert_eq!(id, 1);
        assert!(evicted.is_none());
        let stmt = r.get(id).unwrap();
        assert_eq!(&*stmt.key, "select count(*) from t");
        assert!(r.close(id));
        assert!(!r.close(id), "double close");
        assert!(r.get(id).is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut r = StatementRegistry::with_capacity(2);
        let (a, _) = r.register("k", prepared());
        r.close(a);
        let (b, _) = r.register("k", prepared());
        assert_ne!(a, b);
    }

    #[test]
    fn fifo_eviction_past_capacity() {
        let mut r = StatementRegistry::with_capacity(2);
        let (a, _) = r.register("k", prepared());
        let (b, _) = r.register("k", prepared());
        let (c, evicted) = r.register("k", prepared());
        assert_eq!(evicted, Some(a), "oldest evicted");
        assert!(r.get(a).is_none());
        assert!(r.get(b).is_some());
        assert!(r.get(c).is_some());
        assert_eq!(r.len(), 2);
    }
}
