//! A small blocking client for the wire protocol, shared by the load
//! generator, the CLI's remote mode, the examples and the tests.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::{parse, Json};

/// A client-side protocol error.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent something that is not a JSON frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection speaking newline-delimited JSON.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer: BufWriter::new(write_half) })
    }

    /// Sends one frame and reads one response frame.
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        self.raw_line(&req.to_string())
    }

    /// Queues one request frame without flushing or reading a response —
    /// the building block of pipelining. Follow with more [`send`]s, then
    /// [`flush`] and one [`read_frame`] per queued request (responses come
    /// back strictly in request order).
    ///
    /// [`send`]: Client::send
    /// [`flush`]: Client::flush
    /// [`read_frame`]: Client::read_frame
    pub fn send(&mut self, req: &Json) -> Result<(), ClientError> {
        writeln!(self.writer, "{req}")?;
        Ok(())
    }

    /// Queues every frame and flushes them as one write burst. Responses
    /// are not read; call [`read_frame`](Client::read_frame) once per
    /// request, in order.
    pub fn send_all(&mut self, reqs: &[Json]) -> Result<(), ClientError> {
        for req in reqs {
            self.send(req)?;
        }
        self.flush()
    }

    /// Flushes queued request frames to the socket.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Pipelines a batch: all requests go out in one write, then all
    /// responses are read back, in request order. One transport error
    /// fails the whole batch (per-frame protocol errors arrive as error
    /// frames inside the returned vector, not as `Err`).
    pub fn pipeline(&mut self, reqs: &[Json]) -> Result<Vec<Json>, ClientError> {
        self.send_all(reqs)?;
        reqs.iter().map(|_| self.read_frame()).collect()
    }

    /// Sends one raw line and reads one response frame (test/debug path).
    pub fn raw_line(&mut self, line: &str) -> Result<Json, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_frame()
    }

    /// Reads one response frame without sending anything (used when the
    /// server speaks first, e.g. a connection-limit rejection).
    pub fn read_frame(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        parse(line.trim()).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Executes one SQL statement (text mode).
    pub fn sql(&mut self, sql: &str) -> Result<Json, ClientError> {
        self.request(&Json::obj([("sql", Json::Str(sql.to_owned()))]))
    }

    /// Prepares a statement (protocol v2); the response carries `stmt_id`
    /// and `param_count`.
    pub fn prepare(&mut self, sql: &str) -> Result<Json, ClientError> {
        self.request(&Json::obj([("prepare", Json::Str(sql.to_owned()))]))
    }

    /// Executes a prepared statement by id with positional parameters
    /// (protocol v2).
    pub fn execute(&mut self, stmt_id: u64, params: Vec<Json>) -> Result<Json, ClientError> {
        self.request(&Json::obj([(
            "execute",
            Json::obj([("id", Json::Int(stmt_id as i64)), ("params", Json::Array(params))]),
        )]))
    }

    /// Deallocates a prepared statement (protocol v2).
    pub fn close_stmt(&mut self, stmt_id: u64) -> Result<Json, ClientError> {
        self.request(&Json::obj([("close", Json::Int(stmt_id as i64))]))
    }

    /// Fetches the server's `stats` payload.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let r = self.request(&Json::obj([("cmd", Json::Str("stats".into()))]))?;
        r.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats frame missing payload".into()))
    }

    /// Fetches the Prometheus text-format metrics body.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let r = self.request(&Json::obj([("cmd", Json::Str("metrics".into()))]))?;
        r.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::Protocol("metrics frame missing payload".into()))
    }

    /// Fetches the slow-query log payload (`threshold_ms` + `entries`,
    /// newest first).
    pub fn slowlog(&mut self) -> Result<Json, ClientError> {
        let r = self.request(&Json::obj([("cmd", Json::Str("slowlog".into()))]))?;
        r.get("slowlog")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("slowlog frame missing payload".into()))
    }
}
