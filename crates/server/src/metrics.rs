//! Server-side metric surfaces: per-template latency histograms, the
//! slow-query ring buffer, and Prometheus text-format exposition.
//!
//! [`TemplateStats`] keys one [`LatencyHistogram`] per *canonical statement
//! template* — the same key the plan cache uses — so SSB Q1.1 with
//! different literals is one series, and `{"cmd":"metrics"}` can answer
//! "which query shape is slow" instead of only "the server is slow". The
//! map is bounded: past [`MAX_TEMPLATES`] distinct shapes, new ones fold
//! into the `(other)` series rather than growing without limit.
//!
//! [`SlowLog`] is a bounded ring of the most recent statements that ran
//! longer than the `--slow-ms` threshold, served by `{"cmd":"slowlog"}`
//! newest-first. A threshold of 0 disables capture entirely.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use astore_obs::PromWriter;

use crate::cache::PlanCache;
use crate::hist::LatencyHistogram;
use crate::json::Json;
use crate::stats::ServerStats;

/// Most distinct templates tracked before new shapes fold into `(other)`.
pub const MAX_TEMPLATES: usize = 128;
/// Capacity of the slow-query ring buffer.
pub const SLOWLOG_CAP: usize = 128;
/// Catch-all series name once the per-template map is full.
pub const OVERFLOW_TEMPLATE: &str = "(other)";

/// Per-canonical-template latency histograms, bounded at
/// [`MAX_TEMPLATES`] series.
#[derive(Debug, Default)]
pub struct TemplateStats {
    map: Mutex<HashMap<String, Arc<LatencyHistogram>>>,
}

impl TemplateStats {
    /// An empty map.
    pub fn new() -> Self {
        TemplateStats::default()
    }

    /// Records one sample under a template key. The lock covers only the
    /// map lookup — the histogram increment itself is lock-free.
    pub fn record(&self, template: &str, us: u64) {
        let hist = {
            let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(h) = map.get(template) {
                Arc::clone(h)
            } else if map.len() < MAX_TEMPLATES {
                let h = Arc::new(LatencyHistogram::new());
                map.insert(template.to_owned(), Arc::clone(&h));
                h
            } else {
                Arc::clone(
                    map.entry(OVERFLOW_TEMPLATE.to_owned())
                        .or_insert_with(|| Arc::new(LatencyHistogram::new())),
                )
            }
        };
        hist.record(us);
    }

    /// All series, name-ordered. The histograms are shared handles —
    /// concurrent recording continues while the caller reads them.
    pub fn snapshot(&self) -> Vec<(String, Arc<LatencyHistogram>)> {
        let map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        let mut out: Vec<_> = map.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect();
        drop(map);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of tracked series.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Returns `true` if no series are tracked yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `templates` member of the `{"cmd":"stats"}` payload: one object
    /// per series with count, mean and the monitoring quantiles.
    pub fn to_json(&self) -> Json {
        Json::Array(
            self.snapshot()
                .into_iter()
                .map(|(name, h)| {
                    Json::obj([
                        ("template", Json::Str(name)),
                        ("count", Json::Int(h.count() as i64)),
                        ("mean_us", Json::Float(h.mean_us())),
                        ("p50_us", Json::Int(h.quantile_us(0.50) as i64)),
                        ("p99_us", Json::Int(h.quantile_us(0.99) as i64)),
                        ("max_us", Json::Int(h.max_us() as i64)),
                    ])
                })
                .collect(),
        )
    }
}

/// One captured slow statement.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The canonical statement template that ran slow.
    pub template: String,
    /// End-to-end latency of the offending execution.
    pub elapsed_us: u64,
    /// When the statement finished (for `ago_s` rendering).
    pub at: Instant,
}

/// A bounded ring buffer of statements slower than a runtime threshold.
#[derive(Debug)]
pub struct SlowLog {
    entries: Mutex<VecDeque<SlowEntry>>,
    threshold_us: AtomicU64,
    cap: usize,
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::new(0)
    }
}

impl SlowLog {
    /// A ring of [`SLOWLOG_CAP`] entries capturing statements at or above
    /// `threshold_ms` (0 disables capture).
    pub fn new(threshold_ms: u64) -> Self {
        SlowLog {
            entries: Mutex::new(VecDeque::new()),
            threshold_us: AtomicU64::new(threshold_ms.saturating_mul(1000)),
            cap: SLOWLOG_CAP,
        }
    }

    /// Updates the capture threshold at run time.
    pub fn set_threshold_ms(&self, ms: u64) {
        self.threshold_us.store(ms.saturating_mul(1000), Ordering::Relaxed);
    }

    /// The current threshold in milliseconds (0 = disabled).
    pub fn threshold_ms(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed) / 1000
    }

    /// Offers one finished statement; it is kept only when capture is
    /// enabled and the latency reaches the threshold. The fast path (not
    /// slow, or disabled) is a single relaxed load.
    pub fn observe(&self, template: &str, elapsed_us: u64) {
        let threshold = self.threshold_us.load(Ordering::Relaxed);
        if threshold == 0 || elapsed_us < threshold {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if entries.len() == self.cap {
            entries.pop_front();
        }
        entries.push_back(SlowEntry {
            template: template.to_owned(),
            elapsed_us,
            at: Instant::now(),
        });
    }

    /// Captured entries, newest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        entries.iter().rev().cloned().collect()
    }

    /// Number of captured entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Returns `true` if nothing has been captured (or capture is off).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `{"cmd":"slowlog"}` payload: entries newest first, each with
    /// how long ago it finished.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("threshold_ms", Json::Int(self.threshold_ms() as i64)),
            (
                "entries",
                Json::Array(
                    self.entries()
                        .into_iter()
                        .map(|e| {
                            Json::obj([
                                ("template", Json::Str(e.template)),
                                ("elapsed_us", Json::Int(e.elapsed_us as i64)),
                                ("ago_s", Json::Float(e.at.elapsed().as_secs_f64())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Emits one labeled series of a histogram family: `_bucket` samples with
/// cumulative `le` bounds, then `_sum` and `_count`. The family's
/// `# HELP`/`# TYPE` header is the caller's job (via [`PromWriter::header`],
/// exactly once per metric name) — a family like the per-template latency
/// histogram emits many labeled series under one header, and the Prometheus
/// text format rejects a repeated HELP/TYPE line for the same name.
fn emit_histogram_series(
    w: &mut PromWriter,
    name: &str,
    labels: &[(&str, &str)],
    h: &LatencyHistogram,
) {
    let bucket_name = format!("{name}_bucket");
    for (bound, cumulative) in h.buckets() {
        let le = bound.to_string();
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", &le));
        w.sample_u64(&bucket_name, &with_le, cumulative);
    }
    let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
    with_inf.push(("le", "+Inf"));
    w.sample_u64(&bucket_name, &with_inf, h.count());
    w.sample_u64(&format!("{name}_sum"), labels, h.sum_us());
    w.sample_u64(&format!("{name}_count"), labels, h.count());
}

/// Builds the full Prometheus text-format scrape body: server counters,
/// gauges, the global latency histogram, one labeled histogram per
/// canonical template, and every engine-wide counter registered in the
/// [`astore_obs`] registry (WAL append/fsync and checkpoint timings).
pub fn render_prometheus(
    stats: &ServerStats,
    cache: &PlanCache,
    templates: &TemplateStats,
    slowlog: &SlowLog,
    gauges: &[(&str, &str, f64)],
) -> String {
    let mut w = PromWriter::new();

    let counters: &[(&str, &str, u64)] = &[
        (
            "astore_server_queries_total",
            "Read queries served.",
            stats.queries.load(Ordering::Relaxed),
        ),
        (
            "astore_server_writes_total",
            "Write statements applied.",
            stats.writes.load(Ordering::Relaxed),
        ),
        (
            "astore_server_wal_records_total",
            "Write statements appended to the WAL.",
            stats.wal_records.load(Ordering::Relaxed),
        ),
        (
            "astore_server_checkpoints_total",
            "Checkpoints taken.",
            stats.checkpoints.load(Ordering::Relaxed),
        ),
        (
            "astore_server_group_commits_total",
            "Group-commit batches published (one WAL fsync each).",
            stats.group_commits.load(Ordering::Relaxed),
        ),
        (
            "astore_server_compactions_total",
            "Sealed segments re-encoded by the background compactor.",
            stats.compactions.load(Ordering::Relaxed),
        ),
        (
            "astore_server_parallel_queries_total",
            "Queries run by the morsel-parallel executor.",
            stats.parallel_queries.load(Ordering::Relaxed),
        ),
        (
            "astore_server_parallel_denied_total",
            "Queries that wanted to fan out but ran serial.",
            stats.parallel_denied.load(Ordering::Relaxed),
        ),
        (
            "astore_server_segments_scanned_total",
            "Fact-table segments scanned.",
            stats.segments_scanned.load(Ordering::Relaxed),
        ),
        (
            "astore_server_segments_pruned_total",
            "Fact-table segments skipped by zone maps.",
            stats.segments_pruned.load(Ordering::Relaxed),
        ),
        (
            "astore_server_prepares_total",
            "Statements prepared (protocol v2).",
            stats.prepares.load(Ordering::Relaxed),
        ),
        (
            "astore_server_prepared_execs_total",
            "Prepared executions (protocol v2).",
            stats.prepared_execs.load(Ordering::Relaxed),
        ),
        (
            "astore_server_errors_total",
            "Requests answered with an error frame.",
            stats.errors.load(Ordering::Relaxed),
        ),
        (
            "astore_server_rejected_total",
            "Requests shed by admission control.",
            stats.rejected.load(Ordering::Relaxed),
        ),
        (
            "astore_server_connections_rejected_total",
            "Connections refused at the limit.",
            stats.conn_rejected.load(Ordering::Relaxed),
        ),
        (
            "astore_server_accepts_total",
            "Sockets accepted (admitted or refused).",
            stats.accepts_total.load(Ordering::Relaxed),
        ),
        (
            "astore_server_reads_blocked_on_backpressure_total",
            "Connection reads paused by the write-buffer high watermark.",
            stats.reads_blocked_on_backpressure.load(Ordering::Relaxed),
        ),
        ("astore_server_plan_cache_hits_total", "Plan-cache hits.", cache.hits()),
        ("astore_server_plan_cache_misses_total", "Plan-cache misses.", cache.misses()),
        (
            "astore_server_router_mispredictions_total",
            "Routed executions that ran >1.5x the best tried arm's estimate.",
            stats.router_mispredictions.load(Ordering::Relaxed),
        ),
    ];
    for (name, help, value) in counters {
        w.header(name, help, "counter");
        w.sample_u64(name, &[], *value);
    }

    // The adaptive router's decision counter: one labeled series per engine
    // under a single header.
    w.header(
        "astore_server_router_decisions_total",
        "Adaptive-router decisions per execution engine.",
        "counter",
    );
    for e in crate::router::EngineChoice::ALL {
        w.sample_u64(
            "astore_server_router_decisions_total",
            &[("engine", e.as_str())],
            stats.router_decisions[e.index()].load(Ordering::Relaxed),
        );
    }

    w.header("astore_server_active_connections", "Currently open connections.", "gauge");
    w.sample_u64(
        "astore_server_active_connections",
        &[],
        stats.active_connections.load(Ordering::Relaxed) as u64,
    );
    // The same gauge under the reactor-era name, mirroring the stats frame.
    w.header("astore_server_open_connections", "Currently open connections.", "gauge");
    w.sample_u64(
        "astore_server_open_connections",
        &[],
        stats.active_connections.load(Ordering::Relaxed) as u64,
    );
    w.header("astore_server_cached_plans", "Templates in the plan cache.", "gauge");
    w.sample_u64("astore_server_cached_plans", &[], cache.len() as u64);
    w.header("astore_server_slowlog_entries", "Entries in the slow-query ring.", "gauge");
    w.sample_u64("astore_server_slowlog_entries", &[], slowlog.len() as u64);
    w.header("astore_obs_enabled", "1 when the runtime tracing toggle is on.", "gauge");
    w.sample_u64("astore_obs_enabled", &[], u64::from(astore_obs::enabled()));
    for (name, help, value) in gauges {
        w.header(name, help, "gauge");
        w.sample(name, &[], *value);
    }

    w.header(
        "astore_server_latency_us",
        "End-to-end statement latency (all templates).",
        "histogram",
    );
    emit_histogram_series(&mut w, "astore_server_latency_us", &[], &stats.latency);
    w.header(
        "astore_server_template_latency_us",
        "Statement latency per canonical template.",
        "histogram",
    );
    for (template, hist) in templates.snapshot() {
        emit_histogram_series(
            &mut w,
            "astore_server_template_latency_us",
            &[("template", &template)],
            &hist,
        );
    }
    w.header(
        "astore_server_pipeline_depth",
        "Requests queued or in flight on a connection as each frame arrived (1 = no pipelining).",
        "histogram",
    );
    emit_histogram_series(&mut w, "astore_server_pipeline_depth", &[], &stats.pipeline_depth);
    w.header(
        "astore_server_queue_wait_us",
        "Executor queue wait per priority class (reactor model).",
        "histogram",
    );
    for class in crate::sched::Priority::ALL {
        emit_histogram_series(
            &mut w,
            "astore_server_queue_wait_us",
            &[("class", class.as_str())],
            &stats.queue_wait[class as usize],
        );
    }
    w.header(
        "astore_server_engine_latency_us",
        "Observed execution latency per engine (air/join/denorm).",
        "histogram",
    );
    for e in crate::router::EngineChoice::ALL {
        emit_histogram_series(
            &mut w,
            "astore_server_engine_latency_us",
            &[("engine", e.as_str())],
            &stats.engine_latency[e.index()],
        );
    }

    for (name, value) in astore_obs::counters() {
        w.header(name, "Engine event/timing counter (see astore-obs registry).", "counter");
        w.sample_u64(name, &[], value);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_stats_bound_and_overflow() {
        let t = TemplateStats::new();
        for i in 0..MAX_TEMPLATES + 10 {
            t.record(&format!("SELECT {i}"), 100);
        }
        assert_eq!(t.len(), MAX_TEMPLATES + 1, "cap plus the (other) series");
        let snap = t.snapshot();
        let other = snap.iter().find(|(n, _)| n == OVERFLOW_TEMPLATE).unwrap();
        assert_eq!(other.1.count(), 10, "overflow shapes fold into one series");
        // Recording an existing key still lands on its own series.
        t.record("SELECT 0", 100);
        let snap = t.snapshot();
        assert_eq!(snap.iter().find(|(n, _)| n == "SELECT 0").unwrap().1.count(), 2);
    }

    #[test]
    fn slowlog_captures_above_threshold_newest_first() {
        let log = SlowLog::new(10); // 10ms
        log.observe("fast", 500);
        assert!(log.is_empty(), "below threshold is not captured");
        log.observe("slow-a", 20_000);
        log.observe("slow-b", 11_000);
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].template, "slow-b", "newest first");
        assert_eq!(entries[1].elapsed_us, 20_000);
        log.set_threshold_ms(0);
        log.observe("slow-c", 99_000);
        assert_eq!(log.len(), 2, "threshold 0 disables capture");
    }

    #[test]
    fn slowlog_ring_is_bounded() {
        let log = SlowLog::new(1);
        for i in 0..SLOWLOG_CAP + 5 {
            log.observe(&format!("q{i}"), 2_000 + i as u64);
        }
        assert_eq!(log.len(), SLOWLOG_CAP);
        let entries = log.entries();
        assert_eq!(entries[0].template, format!("q{}", SLOWLOG_CAP + 4), "newest kept");
        assert_eq!(entries.last().unwrap().template, "q5", "oldest evicted");
    }

    #[test]
    fn prometheus_body_is_well_formed() {
        let stats = ServerStats::new();
        stats.queries.fetch_add(3, Ordering::Relaxed);
        stats.latency.record(150);
        let cache = PlanCache::default();
        let templates = TemplateStats::new();
        templates.record("SELECT count(*) FROM fact", 150);
        templates.record("SELECT sum(x) FROM fact", 9_000);
        let slowlog = SlowLog::new(0);
        let body = render_prometheus(
            &stats,
            &cache,
            &templates,
            &slowlog,
            &[("astore_server_engine_threads", "Fan-out ceiling.", 4.0)],
        );
        assert!(body.contains("astore_server_queries_total 3\n"));
        assert!(body.contains("# TYPE astore_server_latency_us histogram\n"));
        assert!(body.contains("astore_server_latency_us_count 1\n"));
        assert!(body.contains(r#"astore_server_latency_us_bucket{le="+Inf"} 1"#));
        assert!(body
            .contains(r#"astore_server_template_latency_us_bucket{template="SELECT count(*) FROM fact",le="+Inf"} 1"#));
        assert!(body.contains("astore_server_engine_threads 4\n"));
        assert!(body.contains(r#"astore_server_router_decisions_total{engine="air"} 0"#));
        assert!(body.contains("astore_server_router_mispredictions_total 0\n"));
        assert!(
            body.contains(r#"astore_server_engine_latency_us_bucket{engine="join",le="+Inf"} 0"#)
        );
        assert!(body
            .contains(r#"astore_server_template_latency_us_bucket{template="SELECT sum(x) FROM fact",le="+Inf"} 1"#));
        // One HELP/TYPE header per family, no matter how many labeled
        // series it has — Prometheus rejects a repeated header.
        for header in ["# HELP", "# TYPE"] {
            let mut names: Vec<&str> = body
                .lines()
                .filter(|l| l.starts_with(header))
                .map(|l| l.split_whitespace().nth(2).unwrap())
                .collect();
            let total = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), total, "duplicate {header} lines in scrape body");
        }
        // Every line is a comment or `name{labels} value`.
        for line in body.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .is_some_and(|(m, v)| !m.is_empty() && v.parse::<f64>().is_ok()),
                "bad exposition line: {line}"
            );
        }
    }
}
