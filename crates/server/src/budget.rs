//! The global core budget: one permit pool shared by inter-query
//! concurrency (the worker pool) and intra-query parallelism (the engine's
//! morsel-driven executor).
//!
//! Without a shared budget the two multiply: `workers × engine-threads`
//! runnable threads on `cores` cores, and every query gets slower under
//! load. The budget models each core as one permit. Every executing
//! statement holds one baseline permit for the worker thread that runs it;
//! a query whose planner wants to fan out asks for *extra* permits, gets
//! whatever is available right now (possibly zero — it then runs serial),
//! and returns them the moment it finishes. Acquisition never blocks, so a
//! loaded server degrades to one-core-per-query instead of deadlocking or
//! oversubscribing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A non-blocking permit pool over the machine's cores.
#[derive(Debug)]
pub struct CoreBudget {
    /// Total permits (normally the machine's available parallelism).
    total: usize,
    /// Permits held: one per executing statement plus any extra engine
    /// threads granted to fanned-out queries.
    in_use: AtomicUsize,
    /// Extra-permit requests that were fully or partially denied.
    denied: AtomicU64,
}

impl CoreBudget {
    /// A budget of `total` permits (clamped to at least 1).
    pub fn new(total: usize) -> Self {
        CoreBudget { total: total.max(1), in_use: AtomicUsize::new(0), denied: AtomicU64::new(0) }
    }

    /// Total permits.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Permits currently held (baseline + extra).
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Extra-permit requests that could not be granted in full.
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }

    /// Permits currently free (`total − in_use`, saturating: the baseline
    /// overshoot clamps to zero). The scheduler's scan gate reads this to
    /// hold scan-class work back while every core is granted.
    pub fn available(&self) -> usize {
        self.total.saturating_sub(self.in_use())
    }

    /// Takes the baseline permit of one executing statement. Never fails:
    /// the statement's worker thread exists and will run regardless, so
    /// refusing the permit would not free its core — admission control (the
    /// bounded worker queue) is the layer that sheds load. The baseline may
    /// transiently push `in_use` past `total`; extra permits are what the
    /// budget refuses in that state.
    pub fn enter_statement(&self) -> Permits<'_> {
        self.in_use.fetch_add(1, Ordering::AcqRel);
        Permits { budget: self, held: 1 }
    }

    /// Tries to take up to `want` *extra* permits for intra-query fan-out.
    /// Grants `min(want, available)` — possibly zero — and never blocks.
    pub fn try_extra(&self, want: usize) -> Permits<'_> {
        let mut granted = 0;
        if want > 0 {
            let mut cur = self.in_use.load(Ordering::Acquire);
            loop {
                let avail = self.total.saturating_sub(cur);
                let take = want.min(avail);
                if take == 0 {
                    break;
                }
                match self.in_use.compare_exchange_weak(
                    cur,
                    cur + take,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        granted = take;
                        break;
                    }
                    Err(now) => cur = now,
                }
            }
            if granted < want {
                self.denied.fetch_add(1, Ordering::Relaxed);
            }
        }
        Permits { budget: self, held: granted }
    }
}

/// Permits held against a [`CoreBudget`]; released on drop.
#[derive(Debug)]
pub struct Permits<'a> {
    budget: &'a CoreBudget,
    held: usize,
}

impl Permits<'_> {
    /// How many permits this grant holds.
    pub fn held(&self) -> usize {
        self.held
    }
}

impl Drop for Permits<'_> {
    fn drop(&mut self) {
        if self.held > 0 {
            self.budget.in_use.fetch_sub(self.held, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_permits_grant_up_to_available() {
        let b = CoreBudget::new(4);
        let s = b.enter_statement();
        let extra = b.try_extra(3);
        assert_eq!(extra.held(), 3, "1 baseline + 3 extra = total");
        assert_eq!(b.in_use(), 4);
        let none = b.try_extra(2);
        assert_eq!(none.held(), 0, "budget exhausted");
        assert_eq!(b.denied(), 1);
        drop(none);
        drop(extra);
        drop(s);
        assert_eq!(b.in_use(), 0, "all permits returned");
    }

    #[test]
    fn partial_grants_under_contention() {
        let b = CoreBudget::new(4);
        let _a = b.enter_statement();
        let _b = b.enter_statement();
        let extra = b.try_extra(3);
        assert_eq!(extra.held(), 2, "only 2 cores left");
        assert_eq!(b.denied(), 1, "partial grant counts as denied");
    }

    #[test]
    fn baseline_never_fails_even_past_total() {
        let b = CoreBudget::new(1);
        let s1 = b.enter_statement();
        let s2 = b.enter_statement();
        assert_eq!(b.in_use(), 2, "baseline overshoots rather than blocks");
        assert_eq!(b.try_extra(1).held(), 0, "but extras are refused");
        drop(s1);
        drop(s2);
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    fn want_zero_is_free() {
        let b = CoreBudget::new(2);
        let p = b.try_extra(0);
        assert_eq!(p.held(), 0);
        assert_eq!(b.denied(), 0, "asking for nothing is not a denial");
    }

    #[test]
    fn concurrent_grants_never_oversubscribe() {
        let b = std::sync::Arc::new(CoreBudget::new(8));
        let peak = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..16 {
                let b = std::sync::Arc::clone(&b);
                let peak = std::sync::Arc::clone(&peak);
                s.spawn(move || {
                    for _ in 0..500 {
                        let _extra = b.try_extra(3);
                        peak.fetch_max(b.in_use(), Ordering::Relaxed);
                    }
                });
            }
        });
        // Only extras here (no baselines), so in_use must never pass total.
        assert!(peak.load(Ordering::Relaxed) <= 8, "extras oversubscribed the budget");
        assert_eq!(b.in_use(), 0);
    }
}
