//! The reactor's executor: a worker pool fed by three strict-priority
//! queues, so interactive point-lookups and metadata commands jump ahead
//! of long scans instead of queueing behind them.
//!
//! Each class has its own bounded queue; a full queue is an *admission*
//! decision surfaced to the caller before a job is built — the reactor is
//! the only submitter, so check-then-submit is race-free — and the caller
//! answers with a typed `server_busy` frame. Workers always drain
//! metadata first, then interactive, then scan; every dequeued job learns
//! how long it waited, which feeds the per-class queue-wait histograms.
//!
//! A pool built with [`PriorityPool::with_budget`] additionally consults
//! the shared [`CoreBudget`] before dequeuing scan-class work: while every
//! core is granted, queued scans are *deferred* (briefly and boundedly)
//! instead of dispatched, so a burst of analytical scans cannot swallow
//! the permits an interactive statement would need. The defer is capped —
//! scans are delayed, never starved.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::budget::CoreBudget;

/// How long one polling step of a deferred scan dequeue waits. Permit
/// release does not signal the pool's condvar, so the gate polls.
const SCAN_DEFER_POLL: Duration = Duration::from_millis(1);

/// Upper bound on how long one scan dequeue can be deferred by the budget
/// gate. Past this the scan runs regardless — bounded delay, not
/// starvation.
const SCAN_DEFER_MAX: Duration = Duration::from_millis(50);

/// Request priority classes, highest first. The discriminant indexes the
/// per-class queues and the `queue_wait` histograms in
/// [`ServerStats`](crate::stats::ServerStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Protocol housekeeping: `cmd` frames, `prepare`, `close`,
    /// malformed requests. Cheap and latency-critical.
    Metadata = 0,
    /// Writes and point lookups — short statements a user is waiting on.
    Interactive = 1,
    /// Everything else: analytical scans that may hold a worker for long.
    Scan = 2,
}

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Metadata, Priority::Interactive, Priority::Scan];

    /// The class's label in stats frames and metric series.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Metadata => "metadata",
            Priority::Interactive => "interactive",
            Priority::Scan => "scan",
        }
    }
}

/// A unit of work; receives its queue wait in microseconds.
pub type Job = Box<dyn FnOnce(u64) + Send + 'static>;

struct Inner {
    /// One FIFO per class, indexed by `Priority as usize`.
    queues: Mutex<[VecDeque<(Job, Instant)>; 3]>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Per-class queue capacity.
    capacity: usize,
    /// When present, scan-class dequeue is gated on free permits.
    budget: Option<Arc<CoreBudget>>,
}

impl Inner {
    /// `true` while scan-class work should be held back: every core in the
    /// shared budget is granted, so dispatching another scan would claim
    /// the baseline permit an interactive statement is about to need.
    /// Shutdown overrides the gate — drain beats deferral.
    fn scan_gate_closed(&self) -> bool {
        !self.shutdown.load(Ordering::Acquire)
            && self.budget.as_ref().is_some_and(|b| b.available() == 0)
    }
}

/// A fixed pool of workers draining three bounded strict-priority queues.
pub struct PriorityPool {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl PriorityPool {
    /// Spawns `workers` threads; each class's queue holds `queue_depth`
    /// jobs.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        PriorityPool::build(workers, queue_depth, None)
    }

    /// Like [`PriorityPool::new`], but scan-class dequeue consults the
    /// shared core budget: while every permit is granted, queued scans are
    /// deferred (up to [`SCAN_DEFER_MAX`]) so scan bursts cannot drain the
    /// permit pool ahead of interactive statements.
    pub fn with_budget(workers: usize, queue_depth: usize, budget: Arc<CoreBudget>) -> Self {
        PriorityPool::build(workers, queue_depth, Some(budget))
    }

    fn build(workers: usize, queue_depth: usize, budget: Option<Arc<CoreBudget>>) -> Self {
        let inner = Arc::new(Inner {
            queues: Mutex::new([VecDeque::new(), VecDeque::new(), VecDeque::new()]),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            capacity: queue_depth.max(1),
            budget,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("astore-exec-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("failed to spawn executor thread")
            })
            .collect();
        PriorityPool { inner, handles }
    }

    /// Whether a job of this class would be admitted right now. With a
    /// single submitting thread (the reactor), a `true` here guarantees
    /// the following [`PriorityPool::submit`] is accepted.
    pub fn accepting(&self, priority: Priority) -> bool {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return false;
        }
        let queues = self.inner.queues.lock().unwrap_or_else(|p| p.into_inner());
        queues[priority as usize].len() < self.inner.capacity
    }

    /// Enqueues a job. Call [`PriorityPool::accepting`] first; a job
    /// submitted past capacity or during shutdown is dropped (its `Done`
    /// answers with an empty frame via its drop hook).
    pub fn submit(&self, priority: Priority, job: Job) {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut queues = self.inner.queues.lock().unwrap_or_else(|p| p.into_inner());
        if queues[priority as usize].len() >= self.inner.capacity {
            return;
        }
        queues[priority as usize].push_back((job, Instant::now()));
        drop(queues);
        self.inner.available.notify_one();
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Stops accepting work, drains what is queued, and joins the workers.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for PriorityPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    let mut queues = inner.queues.lock().unwrap_or_else(|p| p.into_inner());
    // When this worker is holding a scan back for the budget gate, the
    // instant the defer started; bounds the total delay per dequeue.
    let mut scan_deferred_since: Option<Instant> = None;
    loop {
        // Strict priority: metadata beats interactive beats scan. The scan
        // class additionally passes the budget gate (when configured).
        let next = match queues[..2].iter_mut().find_map(VecDeque::pop_front) {
            Some(job) => {
                scan_deferred_since = None;
                Some(job)
            }
            None if queues[Priority::Scan as usize].is_empty() => {
                scan_deferred_since = None;
                None
            }
            None => {
                let deferred = *scan_deferred_since.get_or_insert_with(Instant::now);
                if inner.scan_gate_closed() && deferred.elapsed() < SCAN_DEFER_MAX {
                    // All cores granted: hold the scan briefly. Permit
                    // release has no condvar, so poll; a higher-priority
                    // submit wakes the wait early and is dequeued first.
                    let (q, _) = inner
                        .available
                        .wait_timeout(queues, SCAN_DEFER_POLL)
                        .unwrap_or_else(|p| p.into_inner());
                    queues = q;
                    continue;
                }
                scan_deferred_since = None;
                queues[Priority::Scan as usize].pop_front()
            }
        };
        match next {
            Some((job, enqueued)) => {
                drop(queues);
                let wait_us = enqueued.elapsed().as_micros() as u64;
                // A panicking statement must not take the worker down.
                let _ = std::panic::catch_unwind(AssertUnwindSafe(move || job(wait_us)));
                queues = inner.queues.lock().unwrap_or_else(|p| p.into_inner());
            }
            None => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return; // shutdown after the queues drained
                }
                queues = inner.available.wait(queues).unwrap_or_else(|p| p.into_inner());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn executes_and_reports_queue_wait() {
        let pool = PriorityPool::new(2, 16);
        let (tx, rx) = channel();
        for _ in 0..8 {
            let tx = tx.clone();
            assert!(pool.accepting(Priority::Scan));
            pool.submit(
                Priority::Scan,
                Box::new(move |wait_us| {
                    let _ = tx.send(wait_us);
                }),
            );
        }
        for _ in 0..8 {
            let _wait = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
    }

    #[test]
    fn strict_priority_order_under_single_worker() {
        let pool = PriorityPool::new(1, 16);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (block_tx, block_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        pool.submit(
            Priority::Scan,
            Box::new(move |_| {
                let _ = started_tx.send(());
                let _ = block_rx.recv();
            }),
        );
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Queued while the worker is blocked: submitted scan-first, but
        // the metadata and interactive jobs must run first anyway.
        let (done_tx, done_rx) = channel::<()>();
        for prio in [Priority::Scan, Priority::Interactive, Priority::Metadata] {
            let order = Arc::clone(&order);
            let done = done_tx.clone();
            pool.submit(
                prio,
                Box::new(move |_| {
                    order.lock().unwrap().push(prio);
                    let _ = done.send(());
                }),
            );
        }
        block_tx.send(()).unwrap();
        for _ in 0..3 {
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec![Priority::Metadata, Priority::Interactive, Priority::Scan]
        );
    }

    #[test]
    fn per_class_capacity_gates_admission() {
        let pool = PriorityPool::new(1, 2);
        let (block_tx, block_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        pool.submit(
            Priority::Scan,
            Box::new(move |_| {
                let _ = started_tx.send(());
                let _ = block_rx.recv();
            }),
        );
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.submit(Priority::Scan, Box::new(|_| {}));
        pool.submit(Priority::Scan, Box::new(|_| {}));
        assert!(!pool.accepting(Priority::Scan), "scan queue is full");
        assert!(pool.accepting(Priority::Metadata), "other classes are unaffected");
        block_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = PriorityPool::new(2, 64);
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                pool.submit(
                    Priority::Interactive,
                    Box::new(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }
        } // Drop shuts down after the queues drain.
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    /// ISSUE 10 satellite: an exhausted core budget defers scan-class
    /// dispatch — a scan burst cannot claim the permit an interactive
    /// statement needs — but only boundedly (scans are delayed, never
    /// starved).
    #[test]
    fn exhausted_budget_defers_scans_but_not_interactive() {
        let budget = Arc::new(CoreBudget::new(1));
        let pool = PriorityPool::with_budget(1, 16, Arc::clone(&budget));
        let permit = budget.enter_statement(); // every core granted
        let order = Arc::new(Mutex::new(Vec::new()));
        let (done_tx, done_rx) = channel::<()>();
        {
            let order = Arc::clone(&order);
            let done = done_tx.clone();
            pool.submit(
                Priority::Scan,
                Box::new(move |_| {
                    order.lock().unwrap().push(Priority::Scan);
                    let _ = done.send(());
                }),
            );
        }
        // Give the worker time to see the scan and start deferring, then
        // queue an interactive job: it must overtake the held-back scan.
        std::thread::sleep(Duration::from_millis(5));
        {
            let order = Arc::clone(&order);
            let done = done_tx.clone();
            pool.submit(
                Priority::Interactive,
                Box::new(move |_| {
                    order.lock().unwrap().push(Priority::Interactive);
                    let _ = done.send(());
                }),
            );
        }
        // Both complete even though the permit is never released: the
        // defer is bounded, so the scan eventually runs too.
        for _ in 0..2 {
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![Priority::Interactive, Priority::Scan]);
        drop(permit);
    }

    #[test]
    fn free_budget_dispatches_scans_immediately() {
        let budget = Arc::new(CoreBudget::new(4));
        let pool = PriorityPool::with_budget(2, 16, budget);
        let (tx, rx) = channel();
        pool.submit(
            Priority::Scan,
            Box::new(move |_| {
                let _ = tx.send(());
            }),
        );
        rx.recv_timeout(Duration::from_secs(5)).expect("open gate dispatches scans");
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = PriorityPool::new(1, 8);
        pool.submit(Priority::Scan, Box::new(|_| panic!("statement exploded")));
        let (tx, rx) = channel();
        pool.submit(
            Priority::Scan,
            Box::new(move |_| {
                let _ = tx.send(());
            }),
        );
        rx.recv_timeout(Duration::from_secs(5)).expect("worker survived the panic");
    }
}
