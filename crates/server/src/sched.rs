//! The reactor's executor: a worker pool fed by three strict-priority
//! queues, so interactive point-lookups and metadata commands jump ahead
//! of long scans instead of queueing behind them.
//!
//! Each class has its own bounded queue; a full queue is an *admission*
//! decision surfaced to the caller before a job is built — the reactor is
//! the only submitter, so check-then-submit is race-free — and the caller
//! answers with a typed `server_busy` frame. Workers always drain
//! metadata first, then interactive, then scan; every dequeued job learns
//! how long it waited, which feeds the per-class queue-wait histograms.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Request priority classes, highest first. The discriminant indexes the
/// per-class queues and the `queue_wait` histograms in
/// [`ServerStats`](crate::stats::ServerStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Protocol housekeeping: `cmd` frames, `prepare`, `close`,
    /// malformed requests. Cheap and latency-critical.
    Metadata = 0,
    /// Writes and point lookups — short statements a user is waiting on.
    Interactive = 1,
    /// Everything else: analytical scans that may hold a worker for long.
    Scan = 2,
}

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Metadata, Priority::Interactive, Priority::Scan];

    /// The class's label in stats frames and metric series.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Metadata => "metadata",
            Priority::Interactive => "interactive",
            Priority::Scan => "scan",
        }
    }
}

/// A unit of work; receives its queue wait in microseconds.
pub type Job = Box<dyn FnOnce(u64) + Send + 'static>;

struct Inner {
    /// One FIFO per class, indexed by `Priority as usize`.
    queues: Mutex<[VecDeque<(Job, Instant)>; 3]>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Per-class queue capacity.
    capacity: usize,
}

/// A fixed pool of workers draining three bounded strict-priority queues.
pub struct PriorityPool {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl PriorityPool {
    /// Spawns `workers` threads; each class's queue holds `queue_depth`
    /// jobs.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let inner = Arc::new(Inner {
            queues: Mutex::new([VecDeque::new(), VecDeque::new(), VecDeque::new()]),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            capacity: queue_depth.max(1),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("astore-exec-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("failed to spawn executor thread")
            })
            .collect();
        PriorityPool { inner, handles }
    }

    /// Whether a job of this class would be admitted right now. With a
    /// single submitting thread (the reactor), a `true` here guarantees
    /// the following [`PriorityPool::submit`] is accepted.
    pub fn accepting(&self, priority: Priority) -> bool {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return false;
        }
        let queues = self.inner.queues.lock().unwrap_or_else(|p| p.into_inner());
        queues[priority as usize].len() < self.inner.capacity
    }

    /// Enqueues a job. Call [`PriorityPool::accepting`] first; a job
    /// submitted past capacity or during shutdown is dropped (its `Done`
    /// answers with an empty frame via its drop hook).
    pub fn submit(&self, priority: Priority, job: Job) {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut queues = self.inner.queues.lock().unwrap_or_else(|p| p.into_inner());
        if queues[priority as usize].len() >= self.inner.capacity {
            return;
        }
        queues[priority as usize].push_back((job, Instant::now()));
        drop(queues);
        self.inner.available.notify_one();
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Stops accepting work, drains what is queued, and joins the workers.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for PriorityPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    let mut queues = inner.queues.lock().unwrap_or_else(|p| p.into_inner());
    loop {
        // Strict priority: metadata beats interactive beats scan.
        let next = queues.iter_mut().find_map(VecDeque::pop_front);
        match next {
            Some((job, enqueued)) => {
                drop(queues);
                let wait_us = enqueued.elapsed().as_micros() as u64;
                // A panicking statement must not take the worker down.
                let _ = std::panic::catch_unwind(AssertUnwindSafe(move || job(wait_us)));
                queues = inner.queues.lock().unwrap_or_else(|p| p.into_inner());
            }
            None => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return; // shutdown after the queues drained
                }
                queues = inner.available.wait(queues).unwrap_or_else(|p| p.into_inner());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn executes_and_reports_queue_wait() {
        let pool = PriorityPool::new(2, 16);
        let (tx, rx) = channel();
        for _ in 0..8 {
            let tx = tx.clone();
            assert!(pool.accepting(Priority::Scan));
            pool.submit(
                Priority::Scan,
                Box::new(move |wait_us| {
                    let _ = tx.send(wait_us);
                }),
            );
        }
        for _ in 0..8 {
            let _wait = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
    }

    #[test]
    fn strict_priority_order_under_single_worker() {
        let pool = PriorityPool::new(1, 16);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (block_tx, block_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        pool.submit(
            Priority::Scan,
            Box::new(move |_| {
                let _ = started_tx.send(());
                let _ = block_rx.recv();
            }),
        );
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Queued while the worker is blocked: submitted scan-first, but
        // the metadata and interactive jobs must run first anyway.
        let (done_tx, done_rx) = channel::<()>();
        for prio in [Priority::Scan, Priority::Interactive, Priority::Metadata] {
            let order = Arc::clone(&order);
            let done = done_tx.clone();
            pool.submit(
                prio,
                Box::new(move |_| {
                    order.lock().unwrap().push(prio);
                    let _ = done.send(());
                }),
            );
        }
        block_tx.send(()).unwrap();
        for _ in 0..3 {
            done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec![Priority::Metadata, Priority::Interactive, Priority::Scan]
        );
    }

    #[test]
    fn per_class_capacity_gates_admission() {
        let pool = PriorityPool::new(1, 2);
        let (block_tx, block_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        pool.submit(
            Priority::Scan,
            Box::new(move |_| {
                let _ = started_tx.send(());
                let _ = block_rx.recv();
            }),
        );
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.submit(Priority::Scan, Box::new(|_| {}));
        pool.submit(Priority::Scan, Box::new(|_| {}));
        assert!(!pool.accepting(Priority::Scan), "scan queue is full");
        assert!(pool.accepting(Priority::Metadata), "other classes are unaffected");
        block_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = PriorityPool::new(2, 64);
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                pool.submit(
                    Priority::Interactive,
                    Box::new(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }
        } // Drop shuts down after the queues drain.
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = PriorityPool::new(1, 8);
        pool.submit(Priority::Scan, Box::new(|_| panic!("statement exploded")));
        let (tx, rx) = channel();
        pool.submit(
            Priority::Scan,
            Box::new(move |_| {
                let _ = tx.send(());
            }),
        );
        rx.recv_timeout(Duration::from_secs(5)).expect("worker survived the panic");
    }
}
