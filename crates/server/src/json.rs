//! A minimal JSON codec for the wire protocol.
//!
//! The build environment is offline, so instead of `serde_json` the server
//! carries this ~300-line codec. It distinguishes integers from floats
//! (result sets carry `i64` sums that would lose precision beyond 2^53)
//! and covers the full JSON grammar the protocol needs: objects, arrays,
//! strings with escapes, numbers, booleans, null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (serialized without exponent or fraction).
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. `BTreeMap` keeps serialization deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content (floats with zero fraction coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// The float content (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean content.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array content.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Guarantee a round-trippable float token.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf.
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to a compact single-line string (via `to_string`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Description.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = P { b: input.as_bytes(), pos: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != p.b.len() {
        return Err(p.fail("trailing characters"));
    }
    Ok(v)
}

struct P<'a> {
    b: &'a [u8],
    pos: usize,
}

impl P<'_> {
    fn fail(&self, message: &str) -> JsonError {
        JsonError { message: message.to_owned(), offset: self.pos }
    }

    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.fail(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.fail(&format!("unexpected {:?}", c as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.eat(b']') {
            return Ok(Json::Array(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            if self.eat(b']') {
                return Ok(Json::Array(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.eat(b'}') {
            return Ok(Json::Object(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            map.insert(key, self.value()?);
            self.ws();
            if self.eat(b'}') {
                return Ok(Json::Object(map));
            }
            self.expect(b',')?;
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4(self.pos + 1)?;
                            if (0xD800..=0xDBFF).contains(&cp) {
                                // High surrogate: a conforming client encodes
                                // non-BMP characters as a \uXXXX\uYYYY pair.
                                let tail = self.b.get(self.pos + 5..self.pos + 7);
                                if tail == Some(b"\\u") {
                                    let lo = self.hex4(self.pos + 7)?;
                                    if (0xDC00..=0xDFFF).contains(&lo) {
                                        let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                                        self.pos += 10;
                                        self.pos += 1;
                                        continue;
                                    }
                                }
                                // Lone high surrogate: replace.
                                out.push('\u{fffd}');
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            }
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = &self.b[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.fail("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads 4 hex digits starting at byte offset `at`.
    fn hex4(&self, at: usize) -> Result<u32, JsonError> {
        let hex = self.b.get(at..at + 4).ok_or_else(|| self.fail("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.fail("bad \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.fail("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.fail("bad number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .or_else(|_| text.parse::<f64>().map(Json::Float))
                .map_err(|_| self.fail("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let src = r#"{"sql":"SELECT 1","n":42,"f":1.5,"b":true,"x":null,"a":[1,2,"three"]}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("sql").unwrap().as_str(), Some("SELECT 1"));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(42));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        let re = parse(&v.to_string()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let s = v.to_string();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn big_integers_survive() {
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v, Json::Int(9007199254740993));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("2.5e3").unwrap(), Json::Float(2500.0));
        assert_eq!(parse("-0.25").unwrap(), Json::Float(-0.25));
    }

    #[test]
    fn whole_floats_keep_a_fraction_marker() {
        // So clients can't confuse Float(2.0) with Int(2) after a roundtrip.
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn surrogate_pairs_decode_to_one_character() {
        // Python's json.dumps escapes non-BMP characters this way.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("\u{1f600}".into()));
        assert_eq!(parse(r#""a\ud83d\ude00b""#).unwrap(), Json::Str("a\u{1f600}b".into()));
        // Lone halves are replaced, not fatal.
        assert_eq!(parse(r#""\ud83dx""#).unwrap(), Json::Str("\u{fffd}x".into()));
        assert_eq!(parse(r#""\ude00""#).unwrap(), Json::Str("\u{fffd}".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1}extra"#).is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn nested_structures() {
        let src = r#"{"rows":[[1,"a"],[2,"b"]],"meta":{"depth":{"x":[{}]}}}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
