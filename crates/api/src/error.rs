//! The unified error type of the client API.
//!
//! Every failure — local or remote, lexing through execution — surfaces as
//! one [`AstoreError`] with a stable machine-readable [`code`] (the same
//! codes the wire protocol uses) and, for syntax errors, the byte span of
//! the offending token so [`render`] can print caret diagnostics.
//!
//! [`code`]: AstoreError::code
//! [`render`]: AstoreError::render

use std::fmt;

/// A structured client-API error.
#[derive(Debug)]
pub enum AstoreError {
    /// SQL lexing/parsing failed. `span` is the byte range of the
    /// offending token in `sql`, when known.
    Parse {
        /// Description.
        message: String,
        /// Byte range of the offending token in `sql`.
        span: Option<(usize, usize)>,
        /// The source text, kept for diagnostics.
        sql: Option<String>,
    },
    /// Planning failed: unknown table/column, invalid join, non-SPJGA
    /// shape, conflicting parameter use.
    Plan {
        /// Description.
        message: String,
    },
    /// Parameter binding failed: wrong count, or a value whose kind cannot
    /// satisfy the column its slot is compared against.
    Param {
        /// Description.
        message: String,
    },
    /// Query execution failed (schema binding at run time).
    Exec {
        /// Description.
        message: String,
    },
    /// A write statement was rejected (arity/type mismatch, dangling key,
    /// dead row, …); the database is untouched.
    Write {
        /// Description.
        message: String,
    },
    /// A prepared-statement id the server does not know (closed, evicted,
    /// or from another session).
    UnknownStatement {
        /// The statement id.
        id: u64,
    },
    /// The server shed the request (admission control; retry is usually
    /// fine once in-flight statements drain).
    Busy {
        /// Description.
        message: String,
    },
    /// The server's connection limit was reached and it is closing this
    /// connection — reconnect later rather than retrying on this socket.
    TooManyConnections {
        /// Description.
        message: String,
    },
    /// A statement was used in a way its kind does not support (querying a
    /// write, executing a SELECT, or a statement prepared on a different
    /// connection flavour).
    Usage {
        /// Description.
        message: String,
    },
    /// Any other wire-protocol error frame.
    Protocol {
        /// The frame's error code.
        code: String,
        /// Description.
        message: String,
    },
    /// Transport failure.
    Io(std::io::Error),
}

impl AstoreError {
    /// The stable machine-readable code, matching the wire protocol where
    /// a wire equivalent exists.
    pub fn code(&self) -> &str {
        match self {
            AstoreError::Parse { .. } => "parse_error",
            AstoreError::Plan { .. } => "plan_error",
            AstoreError::Param { .. } => "param_error",
            AstoreError::Exec { .. } => "exec_error",
            AstoreError::Write { .. } => "write_error",
            AstoreError::UnknownStatement { .. } => "unknown_statement",
            AstoreError::Busy { .. } => "server_busy",
            AstoreError::TooManyConnections { .. } => "too_many_connections",
            AstoreError::Usage { .. } => "usage_error",
            AstoreError::Protocol { code, .. } => code,
            AstoreError::Io(_) => "io_error",
        }
    }

    /// A multi-line human-readable rendering. Parse errors with a span
    /// print the offending line with a caret marker:
    ///
    /// ```text
    /// error[parse_error]: parse error: expected keyword select, found SELEKT (at byte 0)
    ///   SELEKT count(*) FROM t
    ///   ^^^^^^
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("error[{}]: {self}", self.code());
        if let AstoreError::Parse { span: Some((start, end)), sql: Some(sql), .. } = self {
            let start = (*start).min(sql.len());
            let end = (*end).clamp(start, sql.len());
            // The line holding the span start, and the span's offset in it.
            let line_start = sql[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
            let line_end = sql[start..].find('\n').map(|i| start + i).unwrap_or(sql.len());
            let line = &sql[line_start..line_end];
            let col = start - line_start;
            let width = end.min(line_end).saturating_sub(start).max(1);
            out.push_str(&format!("\n  {line}\n  {}{}", " ".repeat(col), "^".repeat(width)));
        }
        out
    }
}

impl fmt::Display for AstoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstoreError::Parse { message, .. }
            | AstoreError::Plan { message }
            | AstoreError::Param { message }
            | AstoreError::Exec { message }
            | AstoreError::Write { message }
            | AstoreError::Busy { message }
            | AstoreError::TooManyConnections { message }
            | AstoreError::Usage { message } => write!(f, "{message}"),
            AstoreError::UnknownStatement { id } => {
                write!(f, "statement {id} is not prepared on this connection")
            }
            AstoreError::Protocol { code, message } => write!(f, "[{code}] {message}"),
            AstoreError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for AstoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AstoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AstoreError {
    fn from(e: std::io::Error) -> Self {
        AstoreError::Io(e)
    }
}

/// Maps a local prepare failure, keeping the source text for diagnostics.
pub(crate) fn from_prepare(e: astore_sql::PrepareError, sql: &str) -> AstoreError {
    match e {
        astore_sql::PrepareError::Parse(p) => {
            AstoreError::Parse { message: p.to_string(), span: p.span, sql: Some(sql.to_owned()) }
        }
        astore_sql::PrepareError::Plan(p) => AstoreError::Plan { message: p.to_string() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(
            AstoreError::Parse { message: "x".into(), span: None, sql: None }.code(),
            "parse_error"
        );
        assert_eq!(AstoreError::UnknownStatement { id: 3 }.code(), "unknown_statement");
        assert_eq!(
            AstoreError::Protocol { code: "weird".into(), message: "m".into() }.code(),
            "weird"
        );
    }

    #[test]
    fn render_includes_caret_for_spanned_parse_errors() {
        let e = AstoreError::Parse {
            message: "parse error: unexpected token".into(),
            span: Some((7, 12)),
            sql: Some("SELECT ooops FROM t".into()),
        };
        let r = e.render();
        assert!(r.contains("error[parse_error]"), "{r}");
        assert!(r.contains("SELECT ooops FROM t"), "{r}");
        assert!(r.contains("       ^^^^^"), "{r}");
    }

    #[test]
    fn render_survives_out_of_range_spans() {
        let e = AstoreError::Parse {
            message: "m".into(),
            span: Some((100, 200)),
            sql: Some("short".into()),
        };
        assert!(e.render().contains("error[parse_error]"));
    }
}
