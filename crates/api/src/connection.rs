//! The [`Connection`] trait and its two implementations: embedded
//! (in-process over a [`SharedDatabase`]) and remote (TCP, wire protocol
//! v2). A [`PreparedStatement`] made by either flavour exposes the same
//! metadata, and query results come back as the same typed [`Rows`] — code
//! written against the trait runs unchanged over either transport.

use std::sync::Arc;

use astore_core::exec::{execute, ExecOptions};
use astore_persist::apply::{apply_prepared, ApplyError};
use astore_server::json::Json;
use astore_server::{Client, ClientError};
use astore_sql::prepared::{BoundStatement, Prepared};
use astore_sql::ColumnType;
use astore_storage::catalog::Database;
use astore_storage::snapshot::SharedDatabase;
use astore_storage::types::Value;

use crate::error::{from_prepare, AstoreError};
use crate::rows::Rows;

/// A prepared statement handle: planned once, executable many times with
/// different parameter bindings. Created by [`Connection::prepare`]; use it
/// only with the connection (flavour) that created it.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    sql: String,
    param_count: usize,
    is_select: bool,
    columns: Option<Vec<String>>,
    column_types: Option<Vec<ColumnType>>,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Embedded(Arc<Prepared>),
    Remote { id: u64 },
}

impl PreparedStatement {
    /// The statement's canonical SQL text (embedded) or its source text
    /// (remote).
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Number of parameter values every execution must bind.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Is this a read-only SELECT?
    pub fn is_select(&self) -> bool {
        self.is_select
    }

    /// Output column names (SELECT only).
    pub fn columns(&self) -> Option<&[String]> {
        self.columns.as_deref()
    }

    /// Advertised output column types (SELECT only).
    pub fn column_types(&self) -> Option<&[ColumnType]> {
        self.column_types.as_deref()
    }

    /// The server-side statement id (remote statements only).
    pub fn remote_id(&self) -> Option<u64> {
        match self.inner {
            Inner::Remote { id } => Some(id),
            Inner::Embedded(_) => None,
        }
    }
}

/// One API over both deployment shapes of A-Store: prepare/bind/execute
/// with typed rows and structured errors.
///
/// The `query*` methods run SELECTs and return [`Rows`]; the `execute*`
/// methods run writes and return the number of affected rows. Using a
/// statement with the wrong method — or with a connection flavour that did
/// not prepare it — is a typed [`AstoreError::Usage`] error, never a
/// silent misfire.
pub trait Connection {
    /// Parses and plans `sql` (placeholders: `?` positional, `$n`
    /// numbered) into a reusable [`PreparedStatement`].
    fn prepare(&mut self, sql: &str) -> Result<PreparedStatement, AstoreError>;

    /// Executes a prepared SELECT with the given parameter values.
    fn query_prepared(
        &mut self,
        stmt: &PreparedStatement,
        params: &[Value],
    ) -> Result<Rows, AstoreError>;

    /// Executes a prepared write with the given parameter values,
    /// returning the number of affected rows.
    fn execute_prepared(
        &mut self,
        stmt: &PreparedStatement,
        params: &[Value],
    ) -> Result<u64, AstoreError>;

    /// One-shot SELECT: prepare, bind `params`, run.
    fn query(&mut self, sql: &str, params: &[Value]) -> Result<Rows, AstoreError> {
        let stmt = self.prepare(sql)?;
        self.query_prepared(&stmt, params)
    }

    /// One-shot write: prepare, bind `params`, apply.
    fn execute(&mut self, sql: &str, params: &[Value]) -> Result<u64, AstoreError> {
        let stmt = self.prepare(sql)?;
        self.execute_prepared(&stmt, params)
    }
}

// ---------------------------------------------------------------------------
// Embedded
// ---------------------------------------------------------------------------

/// An in-process connection over a [`SharedDatabase`]: reads execute
/// against O(1) copy-on-write snapshots, writes go through the same
/// validated apply path the server and WAL replay use.
#[derive(Debug, Clone)]
pub struct EmbeddedConnection {
    db: SharedDatabase,
    opts: ExecOptions,
}

impl EmbeddedConnection {
    /// Wraps an owned database.
    pub fn new(db: Database) -> Self {
        EmbeddedConnection::over(SharedDatabase::new(db))
    }

    /// Wraps a shared handle (several connections may share one database).
    pub fn over(db: SharedDatabase) -> Self {
        EmbeddedConnection { db, opts: ExecOptions::default() }
    }

    /// Replaces the execution options (scan variant, thread ceiling, …).
    pub fn with_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The underlying shared database handle.
    pub fn shared(&self) -> &SharedDatabase {
        &self.db
    }

    /// An O(1) read snapshot of the current database state.
    pub fn snapshot(&self) -> Arc<Database> {
        self.db.snapshot()
    }

    /// Like [`Connection::query_prepared`], additionally returning the
    /// engine's plan diagnostics (executor, chain counts, selectivity) —
    /// what the CLI's `\plan on` mode prints.
    pub fn query_with_plan(
        &mut self,
        stmt: &PreparedStatement,
        params: &[Value],
    ) -> Result<(Rows, astore_core::exec::PlanInfo), AstoreError> {
        let prepared = self.embedded_stmt(stmt)?;
        if !stmt.is_select {
            return Err(AstoreError::Usage {
                message: "statement is a write; use execute_prepared".into(),
            });
        }
        let query = match prepared
            .bind(params)
            .map_err(|e| AstoreError::Param { message: e.to_string() })?
        {
            BoundStatement::Select(q) => q,
            BoundStatement::Write(_) => unreachable!("is_select checked"),
        };
        let snap = self.db.snapshot();
        let out = execute(&snap, &query, &self.opts)
            .map_err(|e| AstoreError::Exec { message: e.to_string() })?;
        let rows = Rows::new(
            stmt.columns.clone().unwrap_or_default(),
            stmt.column_types.clone().unwrap_or_default(),
            out.result.rows,
        );
        Ok((rows, out.plan))
    }

    fn embedded_stmt<'s>(
        &self,
        stmt: &'s PreparedStatement,
    ) -> Result<&'s Arc<Prepared>, AstoreError> {
        match &stmt.inner {
            Inner::Embedded(p) => Ok(p),
            Inner::Remote { .. } => Err(AstoreError::Usage {
                message: "statement was prepared on a remote connection".into(),
            }),
        }
    }
}

impl Connection for EmbeddedConnection {
    fn prepare(&mut self, sql: &str) -> Result<PreparedStatement, AstoreError> {
        let snap = self.db.snapshot();
        let prepared = Arc::new(astore_sql::prepare(sql, &snap).map_err(|e| from_prepare(e, sql))?);
        Ok(PreparedStatement {
            sql: prepared.sql().to_owned(),
            param_count: prepared.param_count(),
            is_select: prepared.is_select(),
            columns: prepared.columns().map(<[String]>::to_vec),
            column_types: prepared.column_types().map(<[ColumnType]>::to_vec),
            inner: Inner::Embedded(prepared),
        })
    }

    fn query_prepared(
        &mut self,
        stmt: &PreparedStatement,
        params: &[Value],
    ) -> Result<Rows, AstoreError> {
        self.query_with_plan(stmt, params).map(|(rows, _)| rows)
    }

    fn execute_prepared(
        &mut self,
        stmt: &PreparedStatement,
        params: &[Value],
    ) -> Result<u64, AstoreError> {
        let prepared = self.embedded_stmt(stmt)?;
        if stmt.is_select {
            return Err(AstoreError::Usage {
                message: "statement is a SELECT; use query_prepared".into(),
            });
        }
        let affected = self.db.write(|db| apply_prepared(db, prepared, params));
        match affected {
            Ok((n, _)) => Ok(n as u64),
            Err(ApplyError::Param(e)) => Err(AstoreError::Param { message: e.to_string() }),
            Err(ApplyError::Invalid(m)) => Err(AstoreError::Write { message: m }),
        }
    }
}

// ---------------------------------------------------------------------------
// Remote
// ---------------------------------------------------------------------------

/// A TCP connection to an `astore-serve` instance, speaking wire protocol
/// v2: statements are prepared server-side once and executed by id with
/// bound parameters — the hot path sends no SQL text at all.
#[derive(Debug)]
pub struct RemoteConnection {
    client: Client,
}

impl RemoteConnection {
    /// Connects to a server address (`host:port`).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<Self, AstoreError> {
        Ok(RemoteConnection { client: Client::connect(addr)? })
    }

    /// The server's `stats` payload.
    pub fn stats(&mut self) -> Result<Json, AstoreError> {
        self.client.stats().map_err(client_error)
    }

    /// The underlying wire-protocol client (escape hatch for raw frames).
    pub fn client_mut(&mut self) -> &mut Client {
        &mut self.client
    }

    fn remote_id(&self, stmt: &PreparedStatement) -> Result<u64, AstoreError> {
        match stmt.inner {
            Inner::Remote { id } => Ok(id),
            Inner::Embedded(_) => Err(AstoreError::Usage {
                message: "statement was prepared on an embedded connection".into(),
            }),
        }
    }

    fn run(&mut self, stmt: &PreparedStatement, params: &[Value]) -> Result<Json, AstoreError> {
        let id = self.remote_id(stmt)?;
        let params: Vec<Json> = params.iter().map(value_to_json).collect();
        let frame = self.client.execute(id, params).map_err(client_error)?;
        check_frame(frame, Some(id))
    }

    /// Executes a prepared SELECT once per parameter set, **pipelined**:
    /// every `execute` frame goes out in one write burst and the responses
    /// are read back in order — one network round-trip for the whole batch
    /// instead of one per execution. Results come back in `param_sets`
    /// order; the first error frame fails the batch.
    pub fn query_prepared_many(
        &mut self,
        stmt: &PreparedStatement,
        param_sets: &[&[Value]],
    ) -> Result<Vec<Rows>, AstoreError> {
        let id = self.remote_id(stmt)?;
        if !stmt.is_select {
            return Err(AstoreError::Usage {
                message: "statement is a write; use execute_prepared".into(),
            });
        }
        let reqs: Vec<Json> = param_sets
            .iter()
            .map(|params| {
                Json::obj([(
                    "execute",
                    Json::obj([
                        ("id", Json::Int(id as i64)),
                        ("params", Json::Array(params.iter().map(value_to_json).collect())),
                    ]),
                )])
            })
            .collect();
        let frames = self.client.pipeline(&reqs).map_err(client_error)?;
        frames
            .into_iter()
            .map(|frame| check_frame(frame, Some(id)).map(|f| decode_rows(stmt, &f)))
            .collect()
    }
}

impl Connection for RemoteConnection {
    fn prepare(&mut self, sql: &str) -> Result<PreparedStatement, AstoreError> {
        let frame = self.client.prepare(sql).map_err(client_error)?;
        let frame = check_frame(frame, None)?;
        let id = frame
            .get("stmt_id")
            .and_then(Json::as_i64)
            .ok_or_else(|| protocol("prepare response lacks stmt_id"))?;
        let param_count = frame.get("param_count").and_then(Json::as_i64).unwrap_or(0);
        let is_select = frame.get("kind").and_then(Json::as_str) == Some("select");
        let columns = frame
            .get("columns")
            .and_then(Json::as_array)
            .map(|cs| cs.iter().filter_map(|c| c.as_str().map(str::to_owned)).collect::<Vec<_>>());
        let column_types = frame.get("column_types").and_then(Json::as_array).map(|ts| {
            ts.iter()
                .map(|t| match t.as_str() {
                    Some("int") => ColumnType::Int,
                    Some("str") => ColumnType::Str,
                    _ => ColumnType::Float,
                })
                .collect::<Vec<_>>()
        });
        Ok(PreparedStatement {
            sql: sql.to_owned(),
            param_count: param_count.max(0) as usize,
            is_select,
            columns,
            column_types,
            inner: Inner::Remote { id: id.max(0) as u64 },
        })
    }

    fn query_prepared(
        &mut self,
        stmt: &PreparedStatement,
        params: &[Value],
    ) -> Result<Rows, AstoreError> {
        if !stmt.is_select {
            return Err(AstoreError::Usage {
                message: "statement is a write; use execute_prepared".into(),
            });
        }
        let frame = self.run(stmt, params)?;
        Ok(decode_rows(stmt, &frame))
    }

    fn execute_prepared(
        &mut self,
        stmt: &PreparedStatement,
        params: &[Value],
    ) -> Result<u64, AstoreError> {
        if stmt.is_select {
            return Err(AstoreError::Usage {
                message: "statement is a SELECT; use query_prepared".into(),
            });
        }
        let frame = self.run(stmt, params)?;
        frame
            .get("rows_affected")
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .ok_or_else(|| protocol("write response lacks rows_affected"))
    }
}

/// Decodes a successful SELECT result frame into typed [`Rows`], falling
/// back to the statement's prepare-time metadata when the frame omits
/// column names.
fn decode_rows(stmt: &PreparedStatement, frame: &Json) -> Rows {
    let columns: Vec<String> = frame
        .get("columns")
        .and_then(Json::as_array)
        .map(|cs| cs.iter().filter_map(|c| c.as_str().map(str::to_owned)).collect())
        .or_else(|| stmt.columns.clone())
        .unwrap_or_default();
    let types = stmt.column_types.clone().unwrap_or_else(|| vec![ColumnType::Float; columns.len()]);
    let rows: Vec<Vec<Value>> = frame
        .get("rows")
        .and_then(Json::as_array)
        .map(|rs| {
            rs.iter()
                .filter_map(Json::as_array)
                .map(|r| r.iter().map(json_to_value).collect())
                .collect()
        })
        .unwrap_or_default();
    Rows::new(columns, types, rows)
}

fn protocol(message: &str) -> AstoreError {
    AstoreError::Protocol { code: "protocol".into(), message: message.into() }
}

fn client_error(e: ClientError) -> AstoreError {
    match e {
        ClientError::Io(e) => AstoreError::Io(e),
        ClientError::Protocol(m) => AstoreError::Protocol { code: "protocol".into(), message: m },
    }
}

/// Turns an error frame into the matching [`AstoreError`]; passes success
/// frames through.
fn check_frame(frame: Json, stmt_id: Option<u64>) -> Result<Json, AstoreError> {
    if frame.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(frame);
    }
    let code = frame.get("code").and_then(Json::as_str).unwrap_or("unknown").to_owned();
    let message = frame.get("error").and_then(Json::as_str).unwrap_or("(no message)").to_owned();
    Err(match code.as_str() {
        "parse_error" => AstoreError::Parse { message, span: None, sql: None },
        "plan_error" => AstoreError::Plan { message },
        "param_error" => AstoreError::Param { message },
        "exec_error" => AstoreError::Exec { message },
        "write_error" => AstoreError::Write { message },
        "unknown_statement" => AstoreError::UnknownStatement { id: stmt_id.unwrap_or(0) },
        "server_busy" => AstoreError::Busy { message },
        "too_many_connections" => AstoreError::TooManyConnections { message },
        _ => AstoreError::Protocol { code, message },
    })
}

// Parameter encoding reuses the server's own wire conversion so the two
// sides cannot drift (Key → Int, etc.).
use astore_server::engine::value_to_json;

/// Decodes one result cell. The server only ever emits scalars (see
/// `astore_server::engine::value_to_json`); anything else is rendered
/// leniently rather than failing the whole result set.
fn json_to_value(j: &Json) -> Value {
    match j {
        Json::Int(x) => Value::Int(*x),
        Json::Float(f) => Value::Float(*f),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Null => Value::Null,
        other => Value::Str(other.to_string()),
    }
}
