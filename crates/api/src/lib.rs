//! # astore-api
//!
//! The unified client API of A-Store: one [`Connection`] trait over the
//! embedded in-process engine ([`EmbeddedConnection`]) and the TCP server
//! ([`RemoteConnection`]), with prepared statements, `?`/`$n` parameter
//! binding, typed [`Rows`]/[`Row`] results, and a structured
//! [`AstoreError`] with stable error codes and source-span diagnostics.
//!
//! Before this facade, every consumer drove the engine through a
//! different seam (`astore_core::execute`, `astore_sql::planner`, the
//! server's JSON frames, …). Now there is one pipeline — parse → plan →
//! **prepare** → bind → execute — and the expensive front half runs once
//! per statement, not once per request.
//!
//! ## Embedded quickstart
//!
//! ```
//! use astore_api::{Connection, EmbeddedConnection};
//! use astore_storage::prelude::*;
//!
//! // A tiny star schema: one dimension, one fact table.
//! let mut dim = Table::new("dim", Schema::new(vec![
//!     ColumnDef::new("d_name", DataType::Dict),
//! ]));
//! dim.append_row(&[Value::Str("alpha".into())]);
//! dim.append_row(&[Value::Str("beta".into())]);
//! let mut fact = Table::new("fact", Schema::new(vec![
//!     ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
//!     ColumnDef::new("f_v", DataType::I64),
//! ]));
//! let mut db = Database::new();
//! db.add_table(dim);
//! db.add_table(fact);
//!
//! let mut conn = EmbeddedConnection::new(db);
//!
//! // Writes: prepare once, bind many times.
//! let insert = conn.prepare("INSERT INTO fact VALUES (?, ?)")?;
//! for (key, v) in [(0, 10), (1, 20), (0, 30)] {
//!     conn.execute_prepared(&insert, &[Value::Int(key), Value::Int(v)])?;
//! }
//!
//! // Reads: the same prepare/bind flow, typed rows out.
//! let top = conn.prepare(
//!     "SELECT d_name, sum(f_v) AS total FROM fact, dim \
//!      WHERE f_v >= ? GROUP BY d_name ORDER BY total DESC",
//! )?;
//! assert_eq!(top.columns().unwrap(), ["d_name", "total"]);
//! let rows = conn.query_prepared(&top, &[Value::Int(15)])?;
//! let names: Vec<String> = rows
//!     .map(|row| format!("{}={}", row.as_str(0).unwrap(), row.as_i64(1).unwrap()))
//!     .collect();
//! assert_eq!(names, ["alpha=30", "beta=20"]);
//! # Ok::<(), astore_api::AstoreError>(())
//! ```
//!
//! ## Remote quickstart
//!
//! The same trait over TCP — the statement is prepared server-side once
//! and executed by id, so the hot path sends parameters, not SQL text:
//!
//! ```
//! use astore_api::{Connection, RemoteConnection};
//! use astore_server::{start, Engine, ServerConfig};
//! use astore_storage::prelude::*;
//! use astore_storage::snapshot::SharedDatabase;
//! use std::sync::Arc;
//!
//! # let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
//! # for i in 0..10 { t.append_row(&[Value::Int(i)]); }
//! # let mut db = Database::new();
//! # db.add_table(t);
//! let engine = Arc::new(Engine::new(SharedDatabase::new(db)));
//! let server = start(engine, ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() })?;
//!
//! let mut conn = RemoteConnection::connect(server.addr())?;
//! let stmt = conn.prepare("SELECT count(*) AS n FROM t WHERE v >= ?")?;
//! let mut rows = conn.query_prepared(&stmt, &[Value::Int(5)])?;
//! assert_eq!(rows.next().unwrap().as_i64(0), Some(5));
//! # server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Errors
//!
//! Every failure carries a stable code ([`AstoreError::code`]) matching
//! the wire protocol, and parse errors render caret diagnostics:
//!
//! ```
//! use astore_api::{Connection, EmbeddedConnection};
//! use astore_storage::catalog::Database;
//!
//! let mut conn = EmbeddedConnection::new(Database::new());
//! let err = conn.prepare("SELEKT 1").unwrap_err();
//! assert_eq!(err.code(), "parse_error");
//! assert!(err.render().contains("SELEKT"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod connection;
pub mod error;
pub mod rows;

pub use connection::{Connection, EmbeddedConnection, PreparedStatement, RemoteConnection};
pub use error::AstoreError;
pub use rows::{ColumnType, Row, Rows};

// The storage value type is the API's parameter/result scalar.
pub use astore_storage::types::Value;

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::prelude::*;

    fn star_db() -> Database {
        let mut dim = Table::new(
            "dim",
            Schema::new(vec![
                ColumnDef::new("d_name", DataType::Dict),
                ColumnDef::new("d_rank", DataType::I32),
            ]),
        );
        for (n, r) in [("alpha", 1), ("beta", 2)] {
            dim.append_row(&[Value::Str(n.into()), Value::Int(r)]);
        }
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_v", DataType::I64),
            ]),
        );
        for (k, v) in [(0u32, 10i64), (1, 20), (0, 30)] {
            fact.append_row(&[Value::Key(k), Value::Int(v)]);
        }
        let mut db = Database::new();
        db.add_table(dim);
        db.add_table(fact);
        db
    }

    #[test]
    fn embedded_end_to_end() {
        let mut conn = EmbeddedConnection::new(star_db());
        let stmt = conn
            .prepare("SELECT d_name, sum(f_v) AS s FROM fact, dim WHERE d_rank >= ? GROUP BY d_name ORDER BY d_name")
            .unwrap();
        assert_eq!(stmt.param_count(), 1);
        let rows = conn.query_prepared(&stmt, &[Value::Int(1)]).unwrap();
        assert_eq!(rows.len(), 2);
        let rows = conn.query_prepared(&stmt, &[Value::Int(2)]).unwrap();
        let collected: Vec<_> = rows.collect();
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].as_str(0), Some("beta"));
        assert_eq!(collected[0].as_f64(1), Some(20.0));

        // Writes through the same connection are visible to later reads.
        let n = conn
            .execute("INSERT INTO fact VALUES (?, ?)", &[Value::Int(1), Value::Int(5)])
            .unwrap();
        assert_eq!(n, 1);
        let mut rows = conn.query("SELECT sum(f_v) AS s FROM fact", &[]).unwrap();
        assert_eq!(rows.next().unwrap().as_i64(0), Some(65));
    }

    #[test]
    fn usage_errors_are_typed() {
        let mut conn = EmbeddedConnection::new(star_db());
        let select = conn.prepare("SELECT count(*) FROM fact").unwrap();
        let e = conn.execute_prepared(&select, &[]).unwrap_err();
        assert_eq!(e.code(), "usage_error");
        let write = conn.prepare("DELETE FROM fact WHERE rowid = ?").unwrap();
        let e = conn.query_prepared(&write, &[Value::Int(0)]).unwrap_err();
        assert_eq!(e.code(), "usage_error");
    }

    #[test]
    fn error_codes_span_the_pipeline() {
        let mut conn = EmbeddedConnection::new(star_db());
        assert_eq!(conn.prepare("SELEKT 1").unwrap_err().code(), "parse_error");
        assert_eq!(conn.prepare("SELECT count(*) FROM ghost").unwrap_err().code(), "plan_error");
        let stmt = conn.prepare("SELECT count(*) FROM fact WHERE f_v > ?").unwrap();
        assert_eq!(conn.query_prepared(&stmt, &[]).unwrap_err().code(), "param_error");
        assert_eq!(
            conn.query_prepared(&stmt, &[Value::Str("x".into())]).unwrap_err().code(),
            "param_error"
        );
        assert_eq!(
            conn.execute("INSERT INTO fact VALUES (?, ?)", &[Value::Int(99), Value::Int(0)])
                .unwrap_err()
                .code(),
            "write_error",
            "dangling key caught by validation"
        );
    }

    #[test]
    fn remote_matches_embedded() {
        use astore_server::{start, Engine, ServerConfig};
        use astore_storage::snapshot::SharedDatabase;
        use std::sync::Arc;

        let engine = Arc::new(Engine::new(SharedDatabase::new(star_db())));
        let server = start(
            engine,
            ServerConfig { addr: "127.0.0.1:0".into(), queue_depth: 64, ..Default::default() },
        )
        .unwrap();
        let mut remote = RemoteConnection::connect(server.addr()).unwrap();
        let mut embedded = EmbeddedConnection::new(star_db());

        let sql = "SELECT d_name, sum(f_v) AS s FROM fact, dim WHERE d_rank >= ? \
                   GROUP BY d_name ORDER BY d_name";
        let rs = remote.prepare(sql).unwrap();
        let es = embedded.prepare(sql).unwrap();
        assert_eq!(rs.param_count(), es.param_count());
        assert_eq!(rs.columns(), es.columns());
        assert_eq!(rs.column_types(), es.column_types());
        for rank in [1i64, 2, 3] {
            let r: Vec<Vec<Value>> = remote
                .query_prepared(&rs, &[Value::Int(rank)])
                .unwrap()
                .map(Row::into_values)
                .collect();
            let e: Vec<Vec<Value>> = embedded
                .query_prepared(&es, &[Value::Int(rank)])
                .unwrap()
                .map(Row::into_values)
                .collect();
            assert_eq!(r, e, "rank >= {rank}");
        }

        // Remote writes via execute frames.
        let ins = remote.prepare("INSERT INTO fact VALUES ($1, $2)").unwrap();
        assert_eq!(remote.execute_prepared(&ins, &[Value::Int(0), Value::Int(7)]).unwrap(), 1);
        let e = remote.execute_prepared(&ins, &[Value::Int(42), Value::Int(7)]).unwrap_err();
        assert_eq!(e.code(), "write_error");

        // Mixing connection flavours is a usage error.
        let e = remote.query_prepared(&es, &[Value::Int(1)]).unwrap_err();
        assert_eq!(e.code(), "usage_error");
        server.shutdown();
    }
}
