//! Typed query results: [`Rows`] (an iterator of [`Row`]s with column
//! names and advertised types) shared by the embedded and remote
//! connections, so result handling code is transport-agnostic.

use std::collections::VecDeque;
use std::sync::Arc;

pub use astore_sql::ColumnType;
use astore_storage::types::Value;

/// The shared header of a result set.
#[derive(Debug, Clone)]
struct Header {
    columns: Arc<Vec<String>>,
    types: Arc<Vec<ColumnType>>,
}

/// A materialized result set: column metadata plus an iterator of rows.
#[derive(Debug, Clone)]
pub struct Rows {
    header: Header,
    rows: VecDeque<Vec<Value>>,
}

impl Rows {
    /// Builds a result set (used by the connection implementations).
    pub fn new(columns: Vec<String>, types: Vec<ColumnType>, rows: Vec<Vec<Value>>) -> Self {
        Rows {
            header: Header { columns: Arc::new(columns), types: Arc::new(types) },
            rows: rows.into(),
        }
    }

    /// Output column names, in result order.
    pub fn columns(&self) -> &[String] {
        &self.header.columns
    }

    /// Advertised type of each output column.
    pub fn column_types(&self) -> &[ColumnType] {
        &self.header.types
    }

    /// Rows not yet consumed by the iterator.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when every row has been consumed (or none existed).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Iterator for Rows {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        self.rows.pop_front().map(|values| Row { header: self.header.clone(), values })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.rows.len(), Some(self.rows.len()))
    }
}

impl ExactSizeIterator for Rows {}

/// One result row, addressable by index or column name.
#[derive(Debug, Clone)]
pub struct Row {
    header: Header,
    values: Vec<Value>,
}

impl Row {
    /// Output column names, in result order.
    pub fn columns(&self) -> &[String] {
        &self.header.columns
    }

    /// The raw values of the row.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// The value at `idx`, if in range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// The value of the named output column.
    pub fn get_named(&self, name: &str) -> Option<&Value> {
        let idx = self.header.columns.iter().position(|c| c == name)?;
        self.values.get(idx)
    }

    /// The value at `idx` as an integer (whole floats coerce).
    pub fn as_i64(&self, idx: usize) -> Option<i64> {
        match self.get(idx)? {
            Value::Int(v) => Some(*v),
            Value::Key(k) => Some(i64::from(*k)),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value at `idx` as a float (integers coerce).
    pub fn as_f64(&self, idx: usize) -> Option<f64> {
        match self.get(idx)? {
            Value::Float(f) => Some(*f),
            Value::Int(v) => Some(*v as f64),
            Value::Key(k) => Some(f64::from(*k)),
            _ => None,
        }
    }

    /// The value at `idx` as a string slice (strings only).
    pub fn as_str(&self, idx: usize) -> Option<&str> {
        match self.get(idx)? {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Rows {
        Rows::new(
            vec!["name".into(), "total".into()],
            vec![ColumnType::Str, ColumnType::Float],
            vec![
                vec![Value::Str("a".into()), Value::Float(10.0)],
                vec![Value::Str("b".into()), Value::Float(2.5)],
            ],
        )
    }

    #[test]
    fn iteration_and_typed_access() {
        let mut rs = rows();
        assert_eq!(rs.columns(), ["name", "total"]);
        assert_eq!(rs.column_types(), [ColumnType::Str, ColumnType::Float]);
        assert_eq!(rs.len(), 2);

        let first = rs.next().unwrap();
        assert_eq!(first.as_str(0), Some("a"));
        assert_eq!(first.as_f64(1), Some(10.0));
        assert_eq!(first.as_i64(1), Some(10), "whole float coerces");
        assert_eq!(first.get_named("total"), Some(&Value::Float(10.0)));
        assert!(first.get_named("nope").is_none());

        let second = rs.next().unwrap();
        assert_eq!(second.as_i64(1), None, "2.5 does not coerce to int");
        assert!(rs.next().is_none());
        assert!(rs.is_empty());
    }

    #[test]
    fn exact_size_iterator() {
        let rs = rows();
        assert_eq!(rs.size_hint(), (2, Some(2)));
        assert_eq!(rs.count(), 2);
    }
}
