//! Runnable examples for the A-Store reproduction. See the `examples/`
//! directory: `quickstart`, `ssb_dashboard`, `snowflake_tpch`,
//! `realtime_updates`.
