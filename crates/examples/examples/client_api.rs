//! The unified client API end to end: the same `Connection` trait code
//! running embedded (in-process) and remote (TCP, wire protocol v2), with
//! prepared statements and typed rows.
//!
//! ```text
//! cargo run --release -p astore-examples --example client_api
//! ```

use std::sync::Arc;

use astore_api::{Connection, EmbeddedConnection, RemoteConnection, Value};
use astore_server::{start, Engine, ServerConfig};
use astore_storage::snapshot::SharedDatabase;

/// Runs the identical workload against any connection flavour.
fn tour(conn: &mut impl Connection, label: &str) {
    // Prepare once: the statement is parsed and planned a single time.
    let stmt = conn
        .prepare(
            "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
             WHERE lo_orderdate = d_datekey AND d_year BETWEEN ? AND ? \
             GROUP BY d_year ORDER BY d_year",
        )
        .expect("prepare");
    println!(
        "[{label}] prepared: {} param(s), columns {:?}",
        stmt.param_count(),
        stmt.columns().unwrap()
    );

    // Execute many times with different bindings — no re-parse, no re-plan.
    for (lo, hi) in [(1992, 1993), (1994, 1997)] {
        let rows = conn.query_prepared(&stmt, &[Value::Int(lo), Value::Int(hi)]).expect("query");
        println!("[{label}] years {lo}–{hi}: {} group(s)", rows.len());
        for row in rows {
            println!("[{label}]   {} → {:.0}", row.as_i64(0).unwrap(), row.as_f64(1).unwrap());
        }
    }

    // Writes ride the same prepare/bind pipeline.
    let upd = conn.prepare("UPDATE customer SET c_mktsegment = ? WHERE rowid = ?").expect("prep");
    let n = conn
        .execute_prepared(&upd, &[Value::Str("MACHINERY".into()), Value::Int(0)])
        .expect("execute");
    println!("[{label}] update touched {n} row(s)");

    // Errors are structured: stable codes plus caret diagnostics.
    let err = conn.prepare("SELECT count(*) FROM lineorder WHRE d_year = ?").unwrap_err();
    println!("[{label}] typed error (code {}):\n{}", err.code(), err.render());
}

fn main() {
    println!("generating SSB SF 0.01 …");
    let db = astore_datagen::ssb::generate(0.01, 42);

    // Embedded: the engine runs in this process.
    let mut embedded = EmbeddedConnection::new(db.clone());
    tour(&mut embedded, "embedded");

    // Remote: the same trait over TCP — protocol v2 prepares the statement
    // server-side once and then only ships parameter bindings.
    let engine = Arc::new(Engine::new(SharedDatabase::new(db)));
    let server = start(engine, ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
        .expect("server start");
    println!("server on {}", server.addr());
    let mut remote = RemoteConnection::connect(server.addr()).expect("connect");
    tour(&mut remote, "remote");

    let stats = remote.stats().expect("stats");
    println!(
        "server saw {} prepares, {} prepared executions, cache hit rate {:.2}",
        stats.get("prepares").unwrap(),
        stats.get("prepared_execs").unwrap(),
        stats.get("cache_hit_rate").and_then(|v| v.as_f64()).unwrap_or(0.0)
    );
    server.shutdown();
}
