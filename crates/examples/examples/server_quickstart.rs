//! Serve SSB over TCP and query it through the wire protocol — the
//! end-to-end tour of the `astore-server` subsystem.
//!
//! ```text
//! cargo run --release -p astore-examples --example server_quickstart
//! ```

use std::sync::Arc;

use astore_server::json::Json;
use astore_server::{start, Client, Engine, ServerConfig};
use astore_storage::snapshot::SharedDatabase;

fn main() {
    // 1. Generate a small Star Schema Benchmark instance and wrap it in a
    //    SharedDatabase: readers get O(1) copy-on-write snapshots, writers
    //    go through a write latch that never blocks running queries.
    println!("generating SSB SF 0.01 …");
    let db = astore_datagen::ssb::generate(0.01, 42);
    let shared = SharedDatabase::new(db);

    // 2. Start the server on a free port.
    let engine = Arc::new(Engine::new(shared));
    let config = ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() };
    let handle = start(engine, config).expect("bind failed");
    println!("serving on {}", handle.addr());

    // 3. Connect like any client would: newline-delimited JSON over TCP.
    let mut client = Client::connect(handle.addr()).expect("connect failed");

    // A read: SSB Q1.1, executed join-free against a snapshot.
    let q11 = "SELECT sum(lo_extendedprice * lo_discount) AS revenue \
               FROM lineorder, date \
               WHERE lo_orderdate = d_datekey AND d_year = 1993 \
                 AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25";
    let resp = client.sql(q11).expect("request failed");
    println!("\nQ1.1 → {resp}");

    // Run it again: the normalized SQL text hits the shared plan cache.
    let resp = client.sql(q11).expect("request failed");
    assert_eq!(resp.get("cached_plan").and_then(Json::as_bool), Some(true));
    println!(
        "second run used a cached plan ({} µs)",
        resp.get("elapsed_us").and_then(Json::as_i64).unwrap_or(0)
    );

    // A write: rowid-addressed update routed through SharedDatabase::write.
    let resp = client
        .sql("UPDATE customer SET c_mktsegment = 'MACHINERY' WHERE rowid = 0")
        .expect("request failed");
    println!("update → {resp}");

    // An error: typed frames, the connection survives.
    let resp = client.sql("SELECT nope FROM lineorder").expect("request failed");
    assert_eq!(resp.get("code").and_then(Json::as_str), Some("plan_error"));
    println!("bad query → {resp}");

    // 4. Server-side counters: queries, cache hit rate, p50/p99 latency.
    let stats = client.stats().expect("stats failed");
    println!("\nstats → {stats}");

    handle.shutdown();
    println!("\nserver stopped.");
}
