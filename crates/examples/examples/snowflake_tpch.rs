//! Snowflake schemas: the paper's Fig. 3 / Q3 example on a TPC-H subset.
//!
//! The reference chain `lineitem -> orders -> customer -> nation -> region`
//! is four AIR hops deep, and `orders` is fact-sized — the case where
//! A-Store's optimizer composes predicate filters recursively down the
//! chain (§4.2) and where filter-vs-direct-probe decisions matter.
//!
//! Run with: `cargo run -p astore-examples --example snowflake_tpch --release`

use std::time::Instant;

use astore_baseline::engine::execute_hash_pipeline;
use astore_core::optimizer::OptimizerConfig;
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, tpch};

fn main() {
    let sf = env_scale_factor(0.02);
    println!("generating TPC-H subset at SF={sf} …");
    let db = tpch::generate(sf, 7);
    let graph = JoinGraph::build(&db);
    println!("snowflake chain from lineitem to region:");
    let path = graph.path("lineitem", "region").unwrap();
    for step in &path.steps {
        println!("  {} --[{}]--> {}", step.from_table, step.key_column, step.to_table);
    }

    let q = tpch::paper_q3();
    println!("\npaper Q3: ASIA revenue by nation, orders with price >= 800\n");

    // Default optimizer: predicate vectors for every chain that fits.
    let t = Instant::now();
    let with_filters = execute(&db, &q, &ExecOptions::default()).unwrap();
    let with_ms = t.elapsed().as_secs_f64() * 1e3;

    // Starved cache budget: the optimizer declines the (orders-sized)
    // filter and probes the chain directly — the paper's §4.2 fallback.
    let starved = ExecOptions {
        optimizer: OptimizerConfig { cache_budget_bytes: 64, ..Default::default() },
        ..Default::default()
    };
    let t = Instant::now();
    let no_filters = execute(&db, &q, &starved).unwrap();
    let no_ms = t.elapsed().as_secs_f64() * 1e3;

    // Hash-join baseline.
    let t = Instant::now();
    let hash = execute_hash_pipeline(&db, &q).unwrap();
    let hash_ms = t.elapsed().as_secs_f64() * 1e3;

    assert!(with_filters.result.same_contents(&no_filters.result, 1e-9));
    assert!(with_filters.result.same_contents(&hash.result, 1e-9));

    println!("{}", with_filters.result.to_table_string());
    println!(
        "A-Store with predicate vectors : {with_ms:>8.2} ms ({} chains vectorized)",
        with_filters.plan.predvec_chains
    );
    println!(
        "A-Store direct chain probing   : {no_ms:>8.2} ms ({} chains probed)",
        no_filters.plan.direct_chains
    );
    println!("hash-join pipeline baseline    : {hash_ms:>8.2} ms");
    println!(
        "\nselected {} of {} lineitem rows into {} groups",
        with_filters.plan.selected_rows,
        db.table("lineitem").unwrap().num_slots(),
        with_filters.plan.groups
    );
}
