//! Quickstart: build a tiny star schema by hand, run a SQL query through
//! A-Store, and peek at what virtual denormalization does under the hood.
//!
//! Run with: `cargo run -p astore-examples --example quickstart`

use astore_core::prelude::*;
use astore_sql::run_sql;
use astore_storage::prelude::*;

fn main() {
    // --- 1. Dimension tables. The array index IS the primary key: no key
    //        column is ever stored.
    let mut date = Table::new(
        "date",
        Schema::new(vec![
            ColumnDef::new("d_year", DataType::I32),
            ColumnDef::new("d_month", DataType::Dict),
        ]),
    );
    for (y, m) in [(1997, "April"), (1997, "May"), (1998, "May")] {
        date.append_row(&[Value::Int(i64::from(y)), Value::Str(m.into())]);
    }

    let mut customer = Table::new(
        "customer",
        Schema::new(vec![
            ColumnDef::new("c_name", DataType::Str),
            ColumnDef::new("c_region", DataType::Dict),
        ]),
    );
    for (n, r) in [("Alice", "ASIA"), ("Bob", "EUROPE"), ("Carol", "ASIA")] {
        customer.append_row(&[Value::Str(n.into()), Value::Str(r.into())]);
    }

    // --- 2. The fact table. Foreign keys are ARRAY INDEX REFERENCES (AIR):
    //        plain positions into the dimension arrays.
    let mut lineorder = Table::new(
        "lineorder",
        Schema::new(vec![
            ColumnDef::new("lo_custkey", DataType::Key { target: "customer".into() }),
            ColumnDef::new("lo_datekey", DataType::Key { target: "date".into() }),
            ColumnDef::new("lo_revenue", DataType::I64),
        ]),
    );
    for (c, d, rev) in [(0u32, 0u32, 100i64), (1, 1, 200), (2, 2, 300), (0, 1, 400), (2, 0, 500)] {
        lineorder.append_row(&[Value::Key(c), Value::Key(d), Value::Int(rev)]);
    }

    let mut db = Database::new();
    db.add_table(date);
    db.add_table(customer);
    db.add_table(lineorder);
    assert!(db.validate_references().is_empty());

    // --- 3. The schema's join graph: lineorder is the root, every
    //        dimension is reachable through an AIR chain.
    let graph = JoinGraph::build(&db);
    println!("join graph roots: {:?}", graph.roots());
    for leaf in graph.leaves_of("lineorder") {
        let path = graph.path("lineorder", leaf).unwrap();
        let cols: Vec<&str> = path.steps.iter().map(|s| s.key_column.as_str()).collect();
        println!("  lineorder -> {leaf} via {cols:?}");
    }

    // --- 4. Run SQL. The join conditions are validated against the AIR
    //        edges and then dropped: execution is a scan of the virtual
    //        universal table, never a join.
    let sql = "SELECT c_region, d_year, sum(lo_revenue) AS revenue \
               FROM lineorder, customer, date \
               WHERE lo_custkey = c_custkey AND lo_datekey = d_datekey \
                 AND c_region = 'ASIA' \
               GROUP BY c_region, d_year \
               ORDER BY d_year ASC";
    let out = run_sql(sql, &db, &ExecOptions::default()).expect("query runs");
    println!("\n{sql}\n");
    println!("{}", out.result.to_table_string());
    println!(
        "plan: root={} predicate-vector chains={} agg={:?} selected={} groups={}",
        out.plan.root,
        out.plan.predvec_chains,
        out.plan.agg_strategy,
        out.plan.selected_rows,
        out.plan.groups
    );

    // --- 5. The same query through the programmatic builder API.
    let q = Query::new()
        .filter("customer", Pred::eq("c_region", "ASIA"))
        .group("customer", "c_region")
        .group("date", "d_year")
        .agg(Aggregate::sum(MeasureExpr::col("lo_revenue"), "revenue"))
        .order(OrderKey::asc("d_year"));
    let out2 = execute(&db, &q, &ExecOptions::default()).expect("query runs");
    assert!(out.result.same_contents(&out2.result, 1e-9));
    println!("builder API produced identical results ✓");
}
