//! Persistence quickstart: snapshot a database to disk, log writes to a
//! WAL, crash, and recover — the full durability lifecycle in one file.
//!
//! Run with: `cargo run -p astore-examples --example persistence_quickstart`

use astore_core::prelude::*;
use astore_persist::store;
use astore_sql::sql_to_query;
use astore_storage::prelude::*;

fn revenue_by_year(db: &Database) -> String {
    let q = sql_to_query(
        "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
         WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
        db,
    )
    .expect("query plans");
    let out = execute(db, &q, &ExecOptions::default()).expect("query runs");
    out.result.to_table_string()
}

fn main() {
    let dir = std::env::temp_dir().join("astore-persistence-quickstart");
    let _ = std::fs::remove_dir_all(&dir);

    // ── 1. Generate once, bootstrap the data directory ────────────────────
    println!("generating SSB SF 0.005 …");
    let db = astore_datagen::ssb::generate(0.005, 42);
    let mut wal = store::bootstrap(&dir, &db).expect("bootstrap");
    println!(
        "bootstrapped {} (snapshot {:.1} KiB)",
        dir.display(),
        std::fs::metadata(store::snapshot_path(&dir)).unwrap().len() as f64 / 1024.0
    );
    println!("\nbefore the crash:\n{}", revenue_by_year(&db));

    // ── 2. Apply + log some committed writes ──────────────────────────────
    let shared = SharedDatabase::new(db);
    let template = shared.snapshot().table("lineorder").unwrap().row(0);
    let burst: Vec<String> = (0..50)
        .map(|i| {
            let vals: Vec<String> = template
                .iter()
                .enumerate()
                .map(|(c, v)| match v {
                    Value::Key(k) => format!("{k}"),
                    Value::Int(x) => format!("{}", x + (c as i64 * i) % 7),
                    Value::Float(f) => format!("{f}"),
                    Value::Str(s) => format!("'{s}'"),
                    Value::Null => "NULL".into(),
                })
                .collect();
            format!("INSERT INTO lineorder VALUES ({})", vals.join(", "))
        })
        .collect();
    for sql in &burst {
        let stmt = astore_sql::statement::parse_statement(sql).expect("parses");
        shared.write(|db| {
            astore_persist::apply_statement(db, &stmt).expect("applies");
        });
        wal.append(sql).expect("wal append");
    }
    println!("applied + logged {} INSERTs (WAL lsn {})", burst.len(), wal.last_lsn());

    // ── 3. "Crash": drop everything without checkpointing ─────────────────
    drop(wal);
    let pre_crash = revenue_by_year(&shared.snapshot());
    drop(shared);

    // ── 4. Recover: snapshot + WAL replay ─────────────────────────────────
    let rec = store::open(&dir).expect("recovery");
    println!("\nrecovered: {} WAL records replayed on top of the snapshot", rec.replayed);
    let post_crash = revenue_by_year(&rec.db);
    assert_eq!(pre_crash, post_crash, "recovered answers must match pre-crash answers");
    println!("\nafter recovery (identical to pre-crash):\n{post_crash}");

    // ── 5. Checkpoint: fold the WAL into a fresh snapshot (incremental:
    //      segments untouched since the boot snapshot are byte-copied) ─────
    let mut wal = rec.wal;
    let mut db = rec.db;
    let bytes = store::checkpoint(&dir, &mut db, &mut wal).expect("checkpoint");
    println!("checkpoint written ({:.1} KiB); WAL reset to empty", bytes as f64 / 1024.0);
    let again = store::open(&dir).expect("re-open");
    assert_eq!(again.replayed, 0, "nothing left to replay after a checkpoint");
    println!("re-opened with {} records to replay — cold start is now instant", again.replayed);

    let _ = std::fs::remove_dir_all(&dir);
}
