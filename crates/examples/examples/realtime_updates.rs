//! Real-time analytics: concurrent updates and OLAP over copy-on-write
//! snapshots (paper §4.4).
//!
//! A writer thread appends/deletes/updates lineorder tuples while OLAP
//! queries run against stable snapshots; at the end the dimension table is
//! consolidated (compacted) and all inbound AIR references are rewritten.
//!
//! Run with: `cargo run -p astore-examples --example realtime_updates --release`

use std::time::Duration;

use astore_core::prelude::*;
use astore_storage::prelude::*;

fn build_db() -> Database {
    let mut product = Table::new(
        "product",
        Schema::new(vec![
            ColumnDef::new("p_name", DataType::Str),
            ColumnDef::new("p_cat", DataType::Dict),
        ]),
    );
    for i in 0..20 {
        product.append_row(&[
            Value::Str(format!("product-{i}")),
            Value::Str(format!("cat-{}", i % 4)),
        ]);
    }
    let mut sales = Table::new(
        "sales",
        Schema::new(vec![
            ColumnDef::new("s_product", DataType::Key { target: "product".into() }),
            ColumnDef::new("s_amount", DataType::I64),
        ]),
    );
    sales.reserve(10_000); // §4.4: free space reserved at the end of arrays
    for i in 0..1_000u32 {
        sales.append_row(&[Value::Key(i % 20), Value::Int(i64::from(i % 100))]);
    }
    let mut db = Database::new();
    db.add_table(product);
    db.add_table(sales);
    db
}

fn revenue_by_category(db: &Database) -> QueryResult {
    let q = Query::new()
        .group("product", "p_cat")
        .agg(Aggregate::sum(MeasureExpr::col("s_amount"), "total"))
        .agg(Aggregate::count("n"))
        .order(OrderKey::asc("p_cat"));
    execute(db, &q, &ExecOptions::default()).expect("query runs").result
}

fn main() {
    let shared = SharedDatabase::new(build_db());

    println!("initial state:");
    println!("{}", revenue_by_category(&shared.snapshot()).to_table_string());

    // Writer: a stream of inserts, lazy deletes, and in-place updates.
    let writer = shared.clone();
    let handle = std::thread::spawn(move || {
        for i in 0..2_000u32 {
            match i % 10 {
                // Lazy delete: only a bit flips; the slot is reused later.
                3 => {
                    writer.delete("sales", i % 1_000);
                }
                // In-place update: no foreign keys move.
                7 => {
                    let row = (i * 31) % 1_000;
                    writer.write(|db| {
                        let sales = db.table_mut("sales").unwrap();
                        if sales.is_live(row) {
                            sales.update(row, "s_amount", &Value::Int(999));
                        }
                    });
                }
                // Insert: appends, or reuses a previously deleted slot.
                _ => {
                    writer.insert("sales", &[Value::Key(i % 20), Value::Int(i64::from(i % 50))]);
                }
            }
            if i % 500 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    });

    // Reader: OLAP over consistent snapshots while the writer runs.
    let mut last_total_rows = 0;
    for round in 0..5 {
        let snap = shared.snapshot();
        let result = revenue_by_category(&snap);
        let live = snap.table("sales").unwrap().num_live();
        println!("round {round}: snapshot sees {live} live sales rows, {} groups", result.len());
        // Each snapshot is stable: re-running on it gives identical results
        // even though the writer keeps mutating the live database.
        let again = revenue_by_category(&snap);
        assert_eq!(result, again, "snapshot must be immutable");
        last_total_rows = live;
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.join().unwrap();
    let _ = last_total_rows;

    // Delete a product and watch referential validation flag the dangling
    // sales references; consolidation then rewrites them to NULL.
    shared.write(|db| {
        db.table_mut("product").unwrap().delete(5);
    });
    let dangling = shared.snapshot().validate_references().len();
    println!("\nafter deleting product 5: {dangling} dangling sales references detected");

    shared.consolidate("product");
    let snap = shared.snapshot();
    assert!(snap.validate_references().is_empty());
    println!(
        "after consolidation: product has {} slots, all references valid ✓",
        snap.table("product").unwrap().num_slots()
    );

    println!("\nfinal state:");
    println!("{}", revenue_by_category(&snap).to_table_string());
}
