//! SSB flight: generate the Star Schema Benchmark, run all 13 queries on
//! A-Store and on the hash-join baseline engine, and compare results and
//! timings — a miniature of the paper's Table 5.
//!
//! Run with: `cargo run -p astore-examples --example ssb_dashboard --release`
//! Scale with `ASTORE_SF` (default 0.01 ≈ 60k fact rows),
//! threads with `ASTORE_THREADS`.

use std::time::Instant;

use astore_baseline::engine::execute_hash_pipeline;
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, env_threads, ssb};

fn main() {
    let sf = env_scale_factor(0.01);
    let threads = env_threads();
    println!("generating SSB at SF={sf} …");
    let t0 = Instant::now();
    let db = ssb::generate(sf, 42);
    println!(
        "generated {} lineorder rows in {:.1?} ({:.1} MB resident)",
        db.table("lineorder").unwrap().num_slots(),
        t0.elapsed(),
        db.approx_bytes() as f64 / 1e6
    );

    let serial = ExecOptions::default();
    let parallel = ExecOptions::default().threads(threads);

    println!(
        "\n{:<6} {:>10} {:>12} {:>12} {:>12}  agree",
        "query",
        "rows",
        "a-store",
        "a-store(x".to_owned() + &threads.to_string() + ")",
        "hash-join"
    );
    for sq in ssb::queries() {
        let t = Instant::now();
        let air = execute(&db, &sq.query, &serial).expect("query runs");
        let air_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let par = execute(&db, &sq.query, &parallel).expect("query runs");
        let par_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let hash = execute_hash_pipeline(&db, &sq.query).expect("query runs");
        let hash_ms = t.elapsed().as_secs_f64() * 1e3;

        let agree = air.result.same_contents(&hash.result, 1e-6)
            && air.result.same_contents(&par.result, 1e-6);
        println!(
            "{:<6} {:>10} {:>10.2}ms {:>12.2}ms {:>10.2}ms  {}",
            sq.id,
            air.result.len(),
            air_ms,
            par_ms,
            hash_ms,
            if agree { "✓" } else { "✗ MISMATCH" }
        );
        assert!(agree, "engines disagree on {}", sq.id);
    }

    // Show one full result, like a dashboard drill-down.
    let q31 = &ssb::queries()[6];
    let out = execute(&db, &q31.query, &parallel).unwrap();
    println!("\n{} — revenue by customer/supplier nation and year:", q31.id);
    let table = out.result.to_table_string();
    for line in table.lines().take(12) {
        println!("  {line}");
    }
    if out.result.len() > 11 {
        println!("  … {} more rows", out.result.len() - 11);
    }
}
