//! Little-endian byte encoding helpers shared by the snapshot format and
//! the WAL: an append-only encoder over `Vec<u8>` and a bounds-checked
//! decoding cursor that never panics on truncated or corrupt input.

use crate::PersistError;

/// Appends a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reading cursor over a byte slice. Every read returns
/// [`PersistError::Corrupt`] instead of panicking when the input is short —
/// corrupt files must yield errors, never crashes.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current absolute read offset (for slicing out framed sub-regions).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn corrupt(&self, what: &str) -> PersistError {
        PersistError::Corrupt(format!("truncated {what} at byte {}", self.pos))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(self.corrupt(what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String, PersistError> {
        let len = self.u32(what)? as usize;
        let raw = self.bytes(len, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| PersistError::Corrupt(format!("{what}: invalid UTF-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "héllo");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u32("a").unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64("b").unwrap(), u64::MAX - 1);
        assert_eq!(c.str("c").unwrap(), "héllo");
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "abcdef");
        for cut in 0..buf.len() {
            let mut c = Cursor::new(&buf[..cut]);
            assert!(c.str("s").is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn bad_utf8_is_an_error() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Cursor::new(&buf).str("s").is_err());
    }
}
