//! # astore-persist
//!
//! Durability for A-Store (conf_icde_ZhangZZZSW16): the paper's engine is
//! main-memory only, so this crate adds the two classic pieces that turn it
//! into a restartable system —
//!
//! - [`snapshot`] — a versioned, checksummed on-disk **columnar snapshot**
//!   of a whole [`Database`](astore_storage::catalog::Database): typed
//!   arrays, AIR key columns, dictionaries, string heaps, delete vectors
//!   and free-slot lists, reproduced exactly so array-index primary keys
//!   survive a round trip;
//! - [`wal`] — a CRC-framed, fsync-on-commit **write-ahead log** of the
//!   validated write statements (`INSERT`/`UPDATE`/`DELETE`), with
//!   torn-tail truncation so recovery always yields a prefix of the
//!   acknowledged writes;
//! - [`apply`] — the validated statement-application path shared by the
//!   server's write latch and by WAL replay (one code path, identical
//!   results);
//! - [`store`] — data-directory orchestration: `bootstrap` → `open`
//!   (recover) → `checkpoint`, crash-safe at every step via atomic renames
//!   and LSN-gated replay.
//!
//! Everything is `std`-only and panic-free on corrupt input: a damaged file
//! is an [`PersistError`], never a crash or silently wrong data.
//!
//! ## Example
//!
//! ```
//! use astore_persist::{store, wal::Wal};
//! use astore_storage::prelude::*;
//!
//! let dir = std::env::temp_dir().join(format!("astore-doc-{}", std::process::id()));
//! let mut db = Database::new();
//! let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
//! t.append_row(&[Value::Int(7)]);
//! db.add_table(t);
//!
//! // Bootstrap a data directory, log one write, crash (drop), recover.
//! let mut wal = store::bootstrap(&dir, &db).unwrap();
//! wal.append("INSERT INTO t VALUES (35)").unwrap();
//! drop(wal);
//! let recovered = store::open(&dir).unwrap();
//! assert_eq!(recovered.replayed, 1);
//! assert_eq!(recovered.db.table("t").unwrap().num_live(), 2);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apply;
pub mod crc;
pub mod metrics;
pub mod snapshot;
pub mod store;
pub mod wal;
mod wire;

pub use apply::apply_statement;
pub use snapshot::{load_snapshot, save_snapshot, SNAPSHOT_VERSION};
pub use store::{bootstrap, checkpoint, open, Recovered};
pub use wal::{Wal, WalRecord};

/// Errors of the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file's bytes are damaged or inconsistent (bad magic, checksum
    /// mismatch, truncation, out-of-range structure).
    Corrupt(String),
    /// The file was written by an incompatible format version.
    Version {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt file: {m}"),
            PersistError::Version { found, expected } => {
                write!(f, "format version {found} is not the supported version {expected}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}
