//! The on-disk columnar snapshot format.
//!
//! A snapshot is a faithful, versioned serialization of a whole
//! [`Database`]: for every table its schema, its typed column arrays (AIR
//! key columns included), string heaps and dictionaries, the live bitmap
//! (inverse delete vector) and the free-slot list. Loading a snapshot
//! reproduces not just the live tuples but the exact slot layout, so array
//! index references — the primary keys of the A-Store model — survive a
//! round trip bit-for-bit, and the next insert reuses the same slot it
//! would have reused in the original process.
//!
//! ## Layout (version 1, all integers little-endian)
//!
//! ```text
//! magic    8B  "ASTORESN"
//! version  u32
//! wal_lsn  u64   last WAL record folded into this snapshot (0 = none)
//! ntables  u32
//! table*:
//!   name       str            (u32 length + UTF-8 bytes)
//!   arity      u32
//!   coldef*:   name str, dtype u8 tag, [target str  if Key]
//!   nslots     u64
//!   live       u64-words      (⌈nslots/64⌉ words)
//!   free       u32 count + u32*  (slot-reuse stack, order preserved)
//!   column*:   payload by dtype tag:
//!     I32 raw i32*     I64 raw i64*     F64 raw f64-bits*
//!     Str  str per slot
//!     Dict u32 dict size + str per value, u32 code per slot
//!     Key  u32 per slot
//! crc32    u32   over every preceding byte
//! ```
//!
//! The trailing CRC makes torn or bit-flipped snapshot files a detected
//! error instead of silently wrong data. Writes go through a temp file +
//! atomic rename, so a crash mid-save never clobbers the previous snapshot.

use std::path::Path;

use astore_storage::bitmap::Bitmap;
use astore_storage::catalog::Database;
use astore_storage::column::Column;
use astore_storage::dictionary::{DictColumn, Dictionary};
use astore_storage::strings::StrColumn;
use astore_storage::table::{ColumnDef, Schema, Table};
use astore_storage::types::{DataType, RowId};

use crate::crc::crc32;
use crate::wire::{put_str, put_u32, put_u64, Cursor};
use crate::PersistError;

/// File magic of the snapshot format.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ASTORESN";

/// Current snapshot format version. Bump this when the byte layout changes —
/// the golden-snapshot test pins the layout for a given version.
pub const SNAPSHOT_VERSION: u32 = 1;

const TAG_I32: u8 = 0;
const TAG_I64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DICT: u8 = 4;
const TAG_KEY: u8 = 5;

/// Serializes `db` into the version-1 byte layout with `wal_lsn` recorded in
/// the header. Deterministic: equal databases produce equal bytes.
pub fn encode_snapshot(db: &Database, wal_lsn: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + db.approx_bytes() * 2);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut buf, SNAPSHOT_VERSION);
    put_u64(&mut buf, wal_lsn);
    put_u32(&mut buf, db.len() as u32);
    for name in db.table_names() {
        let t = db.table(name).expect("listed table exists");
        encode_table(&mut buf, t);
    }
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

fn encode_table(buf: &mut Vec<u8>, t: &Table) {
    put_str(buf, t.name());
    put_u32(buf, t.schema().arity() as u32);
    for def in t.schema().defs() {
        put_str(buf, &def.name);
        match &def.dtype {
            DataType::I32 => buf.push(TAG_I32),
            DataType::I64 => buf.push(TAG_I64),
            DataType::F64 => buf.push(TAG_F64),
            DataType::Str => buf.push(TAG_STR),
            DataType::Dict => buf.push(TAG_DICT),
            DataType::Key { target } => {
                buf.push(TAG_KEY);
                put_str(buf, target);
            }
        }
    }
    put_u64(buf, t.num_slots() as u64);
    for w in t.live_bitmap().words() {
        put_u64(buf, *w);
    }
    put_u32(buf, t.free_slots().len() as u32);
    for &slot in t.free_slots() {
        put_u32(buf, slot);
    }
    for i in 0..t.schema().arity() {
        encode_column(buf, t.column_at(i));
    }
}

fn encode_column(buf: &mut Vec<u8>, col: &Column) {
    match col {
        Column::I32(v) => {
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::I64(v) => {
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::F64(v) => {
            for x in v {
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        Column::Str(c) => {
            for s in c.iter() {
                put_str(buf, s);
            }
        }
        Column::Dict(c) => {
            put_u32(buf, c.dict().len() as u32);
            for v in c.dict().values() {
                put_str(buf, v);
            }
            for &code in c.codes() {
                put_u32(buf, code);
            }
        }
        Column::Key { keys, .. } => {
            for &k in keys {
                put_u32(buf, k);
            }
        }
    }
}

/// Parses snapshot bytes, verifying magic, version and checksum. Returns the
/// database and the `wal_lsn` recorded in the header.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(Database, u64), PersistError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(PersistError::Corrupt("snapshot shorter than its header".into()));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(PersistError::Corrupt("bad snapshot magic".into()));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(trailer.try_into().unwrap());
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(PersistError::Corrupt(format!(
            "snapshot checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        )));
    }
    let mut c = Cursor::new(payload);
    c.bytes(8, "magic")?;
    let version = c.u32("version")?;
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::Version { found: version, expected: SNAPSHOT_VERSION });
    }
    let wal_lsn = c.u64("wal_lsn")?;
    let ntables = c.u32("table count")?;
    let mut db = Database::new();
    for _ in 0..ntables {
        db.add_table(decode_table(&mut c)?);
    }
    if c.remaining() != 0 {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after the last table",
            c.remaining()
        )));
    }
    Ok((db, wal_lsn))
}

fn decode_table(c: &mut Cursor<'_>) -> Result<Table, PersistError> {
    let name = c.str("table name")?;
    let arity = c.u32("arity")? as usize;
    let mut defs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let col_name = c.str("column name")?;
        let tag = c.bytes(1, "dtype tag")?[0];
        let dtype = match tag {
            TAG_I32 => DataType::I32,
            TAG_I64 => DataType::I64,
            TAG_F64 => DataType::F64,
            TAG_STR => DataType::Str,
            TAG_DICT => DataType::Dict,
            TAG_KEY => DataType::Key { target: c.str("key target")? },
            other => {
                return Err(PersistError::Corrupt(format!("unknown dtype tag {other}")));
            }
        };
        defs.push(ColumnDef::new(col_name, dtype));
    }
    if defs.iter().enumerate().any(|(i, d)| defs[..i].iter().any(|p| p.name == d.name)) {
        return Err(PersistError::Corrupt(format!("duplicate column name in table {name:?}")));
    }
    let nslots = usize::try_from(c.u64("slot count")?)
        .map_err(|_| PersistError::Corrupt("slot count overflows usize".into()))?;
    // Guard against absurd counts decoded from corrupt bytes before any
    // allocation sized by them.
    if nslots > c.remaining() * 64 {
        return Err(PersistError::Corrupt(format!("slot count {nslots} exceeds file size")));
    }
    let nwords = nslots.div_ceil(64);
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(c.u64("live bitmap")?);
    }
    let live = Bitmap::from_words(words, nslots);
    let nfree = c.u32("free count")? as usize;
    if nfree > nslots {
        return Err(PersistError::Corrupt(format!("{nfree} free slots in {nslots}-slot table")));
    }
    let mut free = Vec::with_capacity(nfree);
    for _ in 0..nfree {
        let slot = c.u32("free slot")?;
        if slot as usize >= nslots || live.get(slot as usize) {
            return Err(PersistError::Corrupt(format!(
                "free slot {slot} out of range or live in table {name:?}"
            )));
        }
        free.push(slot as RowId);
    }
    let mut columns = Vec::with_capacity(arity);
    for def in &defs {
        columns.push(decode_column(c, &def.dtype, nslots)?);
    }
    Ok(Table::from_parts(name, Schema::new(defs), columns, live, free))
}

fn decode_column(c: &mut Cursor<'_>, dtype: &DataType, n: usize) -> Result<Column, PersistError> {
    Ok(match dtype {
        DataType::I32 => {
            let raw = c.bytes(n * 4, "i32 column")?;
            Column::I32(
                raw.chunks_exact(4).map(|b| i32::from_le_bytes(b.try_into().unwrap())).collect(),
            )
        }
        DataType::I64 => {
            let raw = c.bytes(n * 8, "i64 column")?;
            Column::I64(
                raw.chunks_exact(8).map(|b| i64::from_le_bytes(b.try_into().unwrap())).collect(),
            )
        }
        DataType::F64 => {
            let raw = c.bytes(n * 8, "f64 column")?;
            Column::F64(
                raw.chunks_exact(8)
                    .map(|b| f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
                    .collect(),
            )
        }
        DataType::Str => {
            let mut col = StrColumn::new();
            for _ in 0..n {
                col.push(&c.str("string value")?);
            }
            Column::Str(col)
        }
        DataType::Dict => {
            let dict_len = c.u32("dictionary size")? as usize;
            if dict_len > c.remaining() {
                return Err(PersistError::Corrupt(format!(
                    "dictionary size {dict_len} exceeds file size"
                )));
            }
            let mut values = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                values.push(c.str("dictionary value")?);
            }
            if values.iter().enumerate().any(|(i, v)| values[..i].contains(v)) {
                return Err(PersistError::Corrupt("duplicate dictionary value".into()));
            }
            let mut codes = Vec::with_capacity(n);
            for _ in 0..n {
                let code = c.u32("dictionary code")?;
                if code as usize >= dict_len {
                    return Err(PersistError::Corrupt(format!(
                        "dictionary code {code} out of range {dict_len}"
                    )));
                }
                codes.push(code);
            }
            Column::Dict(DictColumn::from_parts(codes, Dictionary::from_values(values)))
        }
        DataType::Key { target } => {
            let raw = c.bytes(n * 4, "key column")?;
            Column::Key {
                target: target.clone(),
                keys: raw
                    .chunks_exact(4)
                    .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                    .collect(),
            }
        }
    })
}

/// Saves `db` to `path` atomically (temp file in the same directory, fsync,
/// rename, then fsync of the parent directory so the rename itself is
/// durable — without it, a power loss could persist a later WAL reset while
/// the directory entry still points at the old snapshot, silently dropping
/// checkpointed writes). Records `wal_lsn` as the last WAL record folded
/// in. Returns the number of bytes written.
pub fn save_snapshot_with_lsn(
    db: &Database,
    path: impl AsRef<Path>,
    wal_lsn: u64,
) -> Result<usize, PersistError> {
    let path = path.as_ref();
    let bytes = encode_snapshot(db, wal_lsn);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, &bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Windows cannot open directories as files; directory-entry
        // durability is a POSIX concern, so a failure here is non-fatal
        // there. On Unix, surface it: the rename is not durable without it.
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all()?,
            Err(_) if !cfg!(unix) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(bytes.len())
}

/// Saves a standalone snapshot (no WAL association).
pub fn save_snapshot(db: &Database, path: impl AsRef<Path>) -> Result<usize, PersistError> {
    save_snapshot_with_lsn(db, path, 0)
}

/// Loads a snapshot file, returning the database and the header's WAL LSN.
pub fn load_snapshot_with_lsn(path: impl AsRef<Path>) -> Result<(Database, u64), PersistError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

/// Loads a snapshot file.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Database, PersistError> {
    load_snapshot_with_lsn(path).map(|(db, _)| db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::types::{Value, NULL_KEY};

    /// A database exercising every column kind, deletes, free slots and a
    /// dynamic (non-sorted) dictionary.
    fn kitchen_sink() -> Database {
        let mut dim = Table::new(
            "dim",
            Schema::new(vec![
                ColumnDef::new("d_tag", DataType::Dict),
                ColumnDef::new("d_note", DataType::Str),
            ]),
        );
        for (tag, note) in [("zulu", "first"), ("alpha", "secönd"), ("zulu", ""), ("mike", "x")] {
            dim.append_row(&[Value::Str(tag.into()), Value::Str(note.into())]);
        }
        dim.delete(2);
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_i32", DataType::I32),
                ColumnDef::new("f_i64", DataType::I64),
                ColumnDef::new("f_f64", DataType::F64),
            ]),
        );
        fact.append_row(&[Value::Key(0), Value::Int(-5), Value::Int(1 << 40), Value::Float(2.5)]);
        fact.append_row(&[Value::Key(NULL_KEY), Value::Int(7), Value::Int(-1), Value::Float(-0.0)]);
        fact.append_row(&[Value::Key(3), Value::Int(0), Value::Int(0), Value::Float(f64::MIN)]);
        fact.delete(1);
        let mut db = Database::new();
        db.add_table(dim);
        db.add_table(fact);
        db
    }

    fn assert_same(a: &Database, b: &Database) {
        assert_eq!(a.table_names(), b.table_names());
        for name in a.table_names() {
            let (ta, tb) = (a.table(name).unwrap(), b.table(name).unwrap());
            assert_eq!(ta.num_slots(), tb.num_slots(), "{name}");
            assert_eq!(ta.live_bitmap(), tb.live_bitmap(), "{name}");
            assert_eq!(ta.free_slots(), tb.free_slots(), "{name}");
            assert_eq!(ta.schema().defs(), tb.schema().defs(), "{name}");
            for row in 0..ta.num_slots() as RowId {
                if ta.is_live(row) {
                    assert_eq!(ta.row(row), tb.row(row), "{name}[{row}]");
                }
            }
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = kitchen_sink();
        let bytes = encode_snapshot(&db, 42);
        let (back, lsn) = decode_snapshot(&bytes).unwrap();
        assert_eq!(lsn, 42);
        assert_same(&db, &back);
        // Dynamic dictionary code order survives (codes, not just values).
        let orig = db.table("dim").unwrap().column("d_tag").unwrap().as_dict().unwrap();
        let load = back.table("dim").unwrap().column("d_tag").unwrap().as_dict().unwrap();
        assert_eq!(orig.codes(), load.codes());
        assert_eq!(orig.dict().values(), load.dict().values());
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode_snapshot(&kitchen_sink(), 7), encode_snapshot(&kitchen_sink(), 7));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("astore-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.snapshot");
        let db = kitchen_sink();
        let n = save_snapshot_with_lsn(&db, &path, 9).unwrap();
        assert_eq!(n, std::fs::metadata(&path).unwrap().len() as usize);
        let (back, lsn) = load_snapshot_with_lsn(&path).unwrap();
        assert_eq!(lsn, 9);
        assert_same(&db, &back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_snapshot(&kitchen_sink(), 0);
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut at {cut} must be detected");
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let bytes = encode_snapshot(&kitchen_sink(), 0);
        // Flip one bit in every byte (covers header, payload and trailer).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode_snapshot(&bad).is_err(), "flip at byte {i} must be detected");
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_snapshot(&kitchen_sink(), 0);
        bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        match decode_snapshot(&bytes) {
            Err(PersistError::Version { found, expected }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let (back, _) = decode_snapshot(&encode_snapshot(&db, 0)).unwrap();
        assert!(back.is_empty());
    }
}
