//! The on-disk columnar snapshot format.
//!
//! A snapshot is a faithful, versioned serialization of a whole
//! [`Database`]: for every table its schema, its typed column arrays (AIR
//! key columns included), string heaps and dictionaries, the live bitmap
//! (inverse delete vector), the free-slot list, and — since version 2 —
//! its segmentation: per-segment column payloads framed with the segment's
//! zone map and a per-segment CRC. Loading a snapshot reproduces not just
//! the live tuples but the exact slot layout *and* the exact zone maps, so
//! array index references survive bit-for-bit, a warm boot prunes
//! immediately (no rebuild scan), and a re-save reproduces the same bytes.
//!
//! ## Layout (version 3, all integers little-endian)
//!
//! ```text
//! magic    8B  "ASTORESN"
//! version  u32  (3)
//! wal_lsn  u64   last WAL record folded into this snapshot (0 = none)
//! ntables  u32
//! table*:
//!   name       str            (u32 length + UTF-8 bytes)
//!   arity      u32
//!   coldef*:   name str, dtype u8 tag, [target str  if Key]
//!   seg_rows   u32            rows per segment
//!   nslots     u64
//!   live       u64-words      (⌈nslots/64⌉ words)
//!   free       u32 count + u32*  (slot-reuse stack, order preserved)
//!   dict*:     u32 size + str*   (one per Dict column, schema order)
//!   nsegs      u32
//!   segment block*:
//!     len      u32            payload bytes
//!     payload:
//!       fmt    u8             0 = raw columns, 1 = per-column encodings
//!       live   u64            live tuples in the segment
//!       stat*: u8 tag + data  (0 untracked; 1 int i64 min/max;
//!                              2 float f64-bits min/max;
//!                              3 key u32 min, u32 max, u64 nulls)
//!       column payload* for the segment's rows:
//!         fmt 0: the raw array —
//!           I32 raw i32*   I64 raw i64*   F64 raw f64-bits*
//!           Str  str per slot   Dict u32 code per slot   Key u32 per slot
//!         fmt 1: enc u8 tag, then
//!           0 raw:    the raw array, exactly as fmt 0
//!           1 packed: base i64, has_null u8, len u32, max_code u64,
//!                     nwords u32, word u64*, crc u32 (over the block)
//!           2 rle:    nruns u32, value i64*, end u32*, crc u32
//!     crc      u32            crc32 of the payload
//! crc32    u32   over every preceding byte
//! ```
//!
//! A *sealed* segment (see `Table::seal_segments`) persists its compressed
//! per-column encodings verbatim — frame-of-reference bit-packed words or
//! RLE runs — and the loader both rebuilds the flat arrays from them and
//! reinstalls the encodings, so a reboot scans compressed segments
//! immediately without re-sealing. Unsealed segments write `fmt 0`, the
//! exact version-2 payload plus the format byte. Each encoded block carries
//! its own CRC so a corrupt compressed column is pinpointed, and every
//! packing invariant the kernels rely on (guard bits, tail lanes, run
//! monotonicity) is re-validated on load.
//!
//! The per-segment CRC + framing makes segments independently addressable:
//! an **incremental checkpoint** ([`encode_snapshot_with_prev`]) copies the
//! raw block bytes of every segment that has not been mutated since the
//! previous snapshot (its zone map is *clean*) instead of re-encoding it —
//! and because encoding is deterministic, the result is byte-identical to a
//! full encode. Version-2 files (raw segmented columns, no encodings) and
//! version-1 files (monolithic per-column payloads, no zone maps) still
//! load; v1 zone maps are rebuilt on load, and both come up unsealed.
//!
//! The trailing CRC makes torn or bit-flipped snapshot files a detected
//! error instead of silently wrong data. Writes go through a temp file +
//! atomic rename, so a crash mid-save never clobbers the previous snapshot.

use std::collections::HashMap;
use std::path::Path;

use astore_storage::bitmap::Bitmap;
use astore_storage::catalog::Database;
use astore_storage::column::Column;
use astore_storage::dictionary::{DictColumn, Dictionary};
use astore_storage::encoded::{EncodedColumn, PackedInts, RleInts, SegmentEncoding};
use astore_storage::segment::{SegmentZone, ZoneStats};
use astore_storage::strings::StrColumn;
use astore_storage::table::{ColumnDef, Schema, Table};
use astore_storage::types::{DataType, Key, RowId};

use crate::crc::crc32;
use crate::wire::{put_str, put_u32, put_u64, Cursor};
use crate::PersistError;

/// File magic of the snapshot format.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ASTORESN";

/// Current snapshot format version (segmented, zone-mapped, compressed
/// segment encodings). Bump this when the byte layout changes — the
/// golden-snapshot test pins the layout for a given version.
pub const SNAPSHOT_VERSION: u32 = 3;

/// The raw segmented format (zone maps but no segment encodings). Still
/// readable; writable only via [`encode_snapshot_v2`] (compatibility
/// fixtures).
pub const SNAPSHOT_VERSION_V2: u32 = 2;

/// The legacy monolithic-column format. Still readable ([`decode_snapshot`]
/// rebuilds zone maps on load); writable only via [`encode_snapshot_v1`]
/// (compatibility fixtures).
pub const SNAPSHOT_VERSION_V1: u32 = 1;

const TAG_I32: u8 = 0;
const TAG_I64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DICT: u8 = 4;
const TAG_KEY: u8 = 5;

const STAT_UNTRACKED: u8 = 0;
const STAT_INT: u8 = 1;
const STAT_FLOAT: u8 = 2;
const STAT_KEY: u8 = 3;

/// v3 segment payload format byte: raw columns (exact v2 shape).
const SEG_FMT_RAW: u8 = 0;
/// v3 segment payload format byte: per-column encoding tags follow.
const SEG_FMT_ENCODED: u8 = 1;

/// v3 per-column encoding tag: the raw array.
const ENC_RAW: u8 = 0;
/// v3 per-column encoding tag: frame-of-reference bit-packed block.
const ENC_PACKED: u8 = 1;
/// v3 per-column encoding tag: run-length block.
const ENC_RLE: u8 = 2;

/// Raw segment blocks of an existing version-2 snapshot, keyed by table
/// then segment — the reuse source of an incremental checkpoint
/// ([`encode_snapshot_with_prev`]). Borrows the snapshot bytes: indexing a
/// file costs one pass and no block copies.
#[derive(Debug, Default)]
pub struct SegmentIndex<'a> {
    blocks: HashMap<String, HashMap<u32, &'a [u8]>>,
}

impl SegmentIndex<'_> {
    /// Number of indexed blocks.
    pub fn len(&self) -> usize {
        self.blocks.values().map(HashMap::len).sum()
    }

    /// Returns `true` if no blocks are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Serializes `db` into the current (version 3) byte layout. Deterministic:
/// equal databases produce equal bytes. Sealed segments persist their
/// compressed encodings; unsealed segments persist raw columns.
pub fn encode_snapshot(db: &Database, wal_lsn: u64) -> Vec<u8> {
    encode_snapshot_with_prev(db, wal_lsn, None).0
}

/// Serializes `db`, copying the raw block bytes of every *clean* segment
/// (not mutated since its table was loaded from / checkpointed to the
/// snapshot `prev` was indexed from) instead of re-encoding it. Returns the
/// bytes and the number of reused segment blocks.
///
/// Correctness contract: `prev` must index the snapshot file this
/// database's clean flags are relative to — i.e. the file it was last
/// loaded from or checkpointed to (see [`crate::store::checkpoint`]).
/// Encoding is deterministic, so the output is byte-identical to a full
/// [`encode_snapshot`] either way.
pub fn encode_snapshot_with_prev(
    db: &Database,
    wal_lsn: u64,
    prev: Option<&SegmentIndex<'_>>,
) -> (Vec<u8>, usize) {
    let mut buf = Vec::with_capacity(64 + db.approx_bytes() * 2);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut buf, SNAPSHOT_VERSION);
    put_u64(&mut buf, wal_lsn);
    put_u32(&mut buf, db.len() as u32);
    let mut reused = 0usize;
    for name in db.table_names() {
        let t = db.table(name).expect("listed table exists");
        reused += encode_table_v3(&mut buf, t, prev);
    }
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    (buf, reused)
}

fn encode_coldefs(buf: &mut Vec<u8>, t: &Table) {
    put_str(buf, t.name());
    put_u32(buf, t.schema().arity() as u32);
    for def in t.schema().defs() {
        put_str(buf, &def.name);
        match &def.dtype {
            DataType::I32 => buf.push(TAG_I32),
            DataType::I64 => buf.push(TAG_I64),
            DataType::F64 => buf.push(TAG_F64),
            DataType::Str => buf.push(TAG_STR),
            DataType::Dict => buf.push(TAG_DICT),
            DataType::Key { target } => {
                buf.push(TAG_KEY);
                put_str(buf, target);
            }
        }
    }
}

/// Writes the per-table preamble shared by v2 and v3 (coldefs through the
/// segment count).
fn encode_table_preamble(buf: &mut Vec<u8>, t: &Table) {
    encode_coldefs(buf, t);
    put_u32(buf, t.segment_rows() as u32);
    put_u64(buf, t.num_slots() as u64);
    for w in t.live_bitmap().words() {
        put_u64(buf, *w);
    }
    put_u32(buf, t.free_slots().len() as u32);
    for &slot in t.free_slots() {
        put_u32(buf, slot);
    }
    // Dictionaries at table level: segment blocks carry only codes, so a
    // dictionary growing in one segment never invalidates the others.
    for i in 0..t.schema().arity() {
        if let Column::Dict(c) = t.column_at(i) {
            put_u32(buf, c.dict().len() as u32);
            for v in c.dict().values() {
                put_str(buf, v);
            }
        }
    }
    put_u32(buf, t.segment_count() as u32);
}

/// Encodes one table in the current (v3) layout; returns the number of
/// segment blocks copied from `prev` instead of re-encoded.
fn encode_table_v3(buf: &mut Vec<u8>, t: &Table, prev: Option<&SegmentIndex>) -> usize {
    encode_table_preamble(buf, t);
    let table_blocks = prev.and_then(|p| p.blocks.get(t.name()));
    let mut reused = 0usize;
    for seg in 0..t.segment_count() {
        let zone = t.zone(seg);
        if !zone.is_dirty() {
            if let Some(block) = table_blocks.and_then(|m| m.get(&(seg as u32))) {
                buf.extend_from_slice(block);
                reused += 1;
                continue;
            }
        }
        let payload = encode_segment_payload_v3(t, seg);
        put_u32(buf, payload.len() as u32);
        let crc = crc32(&payload);
        buf.extend_from_slice(&payload);
        put_u32(buf, crc);
    }
    reused
}

/// Encodes one table in the frozen v2 layout (raw segmented columns).
fn encode_table_v2(buf: &mut Vec<u8>, t: &Table) {
    encode_table_preamble(buf, t);
    for seg in 0..t.segment_count() {
        let payload = encode_segment_payload_v2(t, seg);
        put_u32(buf, payload.len() as u32);
        let crc = crc32(&payload);
        buf.extend_from_slice(&payload);
        put_u32(buf, crc);
    }
}

fn encode_zone_stats(buf: &mut Vec<u8>, zone: &SegmentZone) {
    for stat in zone.stats() {
        match stat {
            ZoneStats::Untracked => buf.push(STAT_UNTRACKED),
            ZoneStats::Int { min, max } => {
                buf.push(STAT_INT);
                buf.extend_from_slice(&min.to_le_bytes());
                buf.extend_from_slice(&max.to_le_bytes());
            }
            ZoneStats::Float { min, max } => {
                buf.push(STAT_FLOAT);
                buf.extend_from_slice(&min.to_bits().to_le_bytes());
                buf.extend_from_slice(&max.to_bits().to_le_bytes());
            }
            ZoneStats::Key { min, max, nulls } => {
                buf.push(STAT_KEY);
                put_u32(buf, *min);
                put_u32(buf, *max);
                put_u64(buf, *nulls);
            }
        }
    }
}

fn encode_segment_payload_v2(t: &Table, seg: usize) -> Vec<u8> {
    let range = t.segment_range(seg);
    let mut buf = Vec::new();
    put_u64(&mut buf, t.zone(seg).live());
    encode_zone_stats(&mut buf, t.zone(seg));
    for i in 0..t.schema().arity() {
        encode_column_range(&mut buf, t.column_at(i), range.clone());
    }
    buf
}

/// The v3 segment payload: the v2 payload prefixed with a format byte, and
/// — when the segment is sealed with at least one encoded column — the
/// compressed per-column blocks in place of the raw arrays.
fn encode_segment_payload_v3(t: &Table, seg: usize) -> Vec<u8> {
    let range = t.segment_range(seg);
    // Only a *clean, full-coverage* seal persists in encoded form: a
    // segment with stale write-through rows or an appended overhang would
    // decode to superseded/short columns, so it checkpoints raw and its
    // encoding is rebuilt by a later seal or compaction. (This keeps the
    // snapshot format at v3 — the delta tail is recovered from the WAL.)
    let enc = t.encoding(seg).filter(|e| {
        e.encoded_cols() > 0
            && t.segment_stale(seg).is_empty()
            && e.covered_rows() == Some(range.len())
    });
    let mut buf = Vec::new();
    buf.push(if enc.is_some() { SEG_FMT_ENCODED } else { SEG_FMT_RAW });
    put_u64(&mut buf, t.zone(seg).live());
    encode_zone_stats(&mut buf, t.zone(seg));
    let Some(enc) = enc else {
        for i in 0..t.schema().arity() {
            encode_column_range(&mut buf, t.column_at(i), range.clone());
        }
        return buf;
    };
    for i in 0..t.schema().arity() {
        match &enc.cols[i] {
            None => {
                buf.push(ENC_RAW);
                encode_column_range(&mut buf, t.column_at(i), range.clone());
            }
            Some(EncodedColumn::Packed(p)) => {
                buf.push(ENC_PACKED);
                let start = buf.len();
                buf.extend_from_slice(&p.base().to_le_bytes());
                buf.push(u8::from(p.null_code().is_some()));
                put_u32(&mut buf, p.len() as u32);
                put_u64(&mut buf, p.max_code());
                put_u32(&mut buf, p.words().len() as u32);
                for &w in p.words() {
                    put_u64(&mut buf, w);
                }
                let crc = crc32(&buf[start..]);
                put_u32(&mut buf, crc);
            }
            Some(EncodedColumn::Rle(r)) => {
                buf.push(ENC_RLE);
                let start = buf.len();
                put_u32(&mut buf, r.run_count() as u32);
                for v in r.values() {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                for &e in r.ends() {
                    put_u32(&mut buf, e);
                }
                let crc = crc32(&buf[start..]);
                put_u32(&mut buf, crc);
            }
        }
    }
    buf
}

fn encode_column_range(buf: &mut Vec<u8>, col: &Column, range: std::ops::Range<usize>) {
    match col {
        Column::I32(v) => {
            for x in &v[range] {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::I64(v) => {
            for x in &v[range] {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::F64(v) => {
            for x in &v[range] {
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        Column::Str(c) => {
            for row in range {
                put_str(buf, c.get(row));
            }
        }
        Column::Dict(c) => {
            for &code in &c.codes()[range] {
                put_u32(buf, code);
            }
        }
        Column::Key { keys, .. } => {
            for &k in &keys[range] {
                put_u32(buf, k);
            }
        }
    }
}

/// Serializes `db` into the **legacy version-2** byte layout (raw
/// segmented columns, no segment encodings). Kept so
/// backward-compatibility fixtures can be produced and verified;
/// production saves use [`encode_snapshot`].
pub fn encode_snapshot_v2(db: &Database, wal_lsn: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + db.approx_bytes() * 2);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut buf, SNAPSHOT_VERSION_V2);
    put_u64(&mut buf, wal_lsn);
    put_u32(&mut buf, db.len() as u32);
    for name in db.table_names() {
        let t = db.table(name).expect("listed table exists");
        encode_table_v2(&mut buf, t);
    }
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

/// Serializes `db` into the **legacy version-1** byte layout (monolithic
/// per-column payloads, no segmentation). Kept so backward-compatibility
/// fixtures can be produced and verified; production saves use
/// [`encode_snapshot`].
pub fn encode_snapshot_v1(db: &Database, wal_lsn: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + db.approx_bytes() * 2);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut buf, SNAPSHOT_VERSION_V1);
    put_u64(&mut buf, wal_lsn);
    put_u32(&mut buf, db.len() as u32);
    for name in db.table_names() {
        let t = db.table(name).expect("listed table exists");
        encode_table_v1(&mut buf, t);
    }
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

fn encode_table_v1(buf: &mut Vec<u8>, t: &Table) {
    encode_coldefs(buf, t);
    put_u64(buf, t.num_slots() as u64);
    for w in t.live_bitmap().words() {
        put_u64(buf, *w);
    }
    put_u32(buf, t.free_slots().len() as u32);
    for &slot in t.free_slots() {
        put_u32(buf, slot);
    }
    for i in 0..t.schema().arity() {
        let col = t.column_at(i);
        if let Column::Dict(c) = col {
            put_u32(buf, c.dict().len() as u32);
            for v in c.dict().values() {
                put_str(buf, v);
            }
        }
        encode_column_range(buf, col, 0..t.num_slots());
    }
}

/// Parses snapshot bytes, verifying magic, version and checksum. Returns
/// the database and the `wal_lsn` recorded in the header. Accepts the
/// current version 3 (zone maps and segment encodings loaded verbatim),
/// version 2 (zone maps verbatim, no encodings) and the legacy version 1
/// (zone maps rebuilt).
pub fn decode_snapshot(bytes: &[u8]) -> Result<(Database, u64), PersistError> {
    let (mut c, version, wal_lsn, ntables) = decode_header(bytes)?;
    let mut db = Database::new();
    for _ in 0..ntables {
        let table = match version {
            SNAPSHOT_VERSION_V1 => decode_table_v1(&mut c)?,
            SNAPSHOT_VERSION_V2 => decode_table_v2(&mut c)?,
            _ => decode_table_v3(&mut c)?,
        };
        db.add_table(table);
    }
    if c.remaining() != 0 {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after the last table",
            c.remaining()
        )));
    }
    Ok((db, wal_lsn))
}

/// Verifies magic/version/CRC and returns a cursor positioned at the first
/// table, plus `(version, wal_lsn, ntables)`.
fn decode_header(bytes: &[u8]) -> Result<(Cursor<'_>, u32, u64, u32), PersistError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(PersistError::Corrupt("snapshot shorter than its header".into()));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(PersistError::Corrupt("bad snapshot magic".into()));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(trailer.try_into().unwrap());
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(PersistError::Corrupt(format!(
            "snapshot checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        )));
    }
    let mut c = Cursor::new(payload);
    c.bytes(8, "magic")?;
    let version = c.u32("version")?;
    if !matches!(version, SNAPSHOT_VERSION | SNAPSHOT_VERSION_V2 | SNAPSHOT_VERSION_V1) {
        return Err(PersistError::Version { found: version, expected: SNAPSHOT_VERSION });
    }
    let wal_lsn = c.u64("wal_lsn")?;
    let ntables = c.u32("table count")?;
    Ok((c, version, wal_lsn, ntables))
}

/// Indexes the segment blocks of a current-version snapshot for checkpoint
/// reuse. Returns `None` for anything unusable (missing/corrupt file,
/// legacy version — v1/v2 blocks are laid out differently, so a checkpoint
/// over an old file falls back to a full encode and upgrades it in place).
pub fn index_snapshot_segments(bytes: &[u8]) -> Option<SegmentIndex<'_>> {
    let (mut c, version, _, ntables) = decode_header(bytes).ok()?;
    if version != SNAPSHOT_VERSION {
        return None;
    }
    let mut index = SegmentIndex::default();
    for _ in 0..ntables {
        let header = decode_table_header(&mut c, true).ok()?;
        let nsegs = c.u32("segment count").ok()? as usize;
        let table_blocks: &mut HashMap<u32, &[u8]> = index.blocks.entry(header.name).or_default();
        for seg in 0..nsegs {
            let start = c.position();
            let len = c.u32("segment length").ok()? as usize;
            c.bytes(len + 4, "segment block").ok()?;
            table_blocks.insert(seg as u32, &bytes[start..c.position()]);
        }
    }
    Some(index)
}

/// The per-table preamble shared by v1 and v2 (v2 additionally carries
/// `seg_rows` and hoisted dictionaries).
struct TableHeader {
    name: String,
    defs: Vec<ColumnDef>,
    seg_rows: usize,
    nslots: usize,
    live: Bitmap,
    free: Vec<RowId>,
    /// Table-level dictionaries, one per `Dict` column (v2 only).
    dicts: Vec<Option<Dictionary>>,
}

fn decode_coldefs(c: &mut Cursor<'_>) -> Result<(String, Vec<ColumnDef>), PersistError> {
    let name = c.str("table name")?;
    let arity = c.u32("arity")? as usize;
    let mut defs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let col_name = c.str("column name")?;
        let tag = c.bytes(1, "dtype tag")?[0];
        let dtype = match tag {
            TAG_I32 => DataType::I32,
            TAG_I64 => DataType::I64,
            TAG_F64 => DataType::F64,
            TAG_STR => DataType::Str,
            TAG_DICT => DataType::Dict,
            TAG_KEY => DataType::Key { target: c.str("key target")? },
            other => {
                return Err(PersistError::Corrupt(format!("unknown dtype tag {other}")));
            }
        };
        defs.push(ColumnDef::new(col_name, dtype));
    }
    if defs.iter().enumerate().any(|(i, d)| defs[..i].iter().any(|p| p.name == d.name)) {
        return Err(PersistError::Corrupt(format!("duplicate column name in table {name:?}")));
    }
    Ok((name, defs))
}

fn decode_table_header(c: &mut Cursor<'_>, v2: bool) -> Result<TableHeader, PersistError> {
    let (name, defs) = decode_coldefs(c)?;
    let seg_rows = if v2 {
        let sr = c.u32("segment rows")? as usize;
        if sr == 0 {
            return Err(PersistError::Corrupt(format!("zero segment size in table {name:?}")));
        }
        sr
    } else {
        astore_storage::segment::SEGMENT_ROWS
    };
    let nslots = usize::try_from(c.u64("slot count")?)
        .map_err(|_| PersistError::Corrupt("slot count overflows usize".into()))?;
    // Guard against absurd counts decoded from corrupt bytes before any
    // allocation sized by them.
    if nslots > c.remaining() * 64 {
        return Err(PersistError::Corrupt(format!("slot count {nslots} exceeds file size")));
    }
    let nwords = nslots.div_ceil(64);
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(c.u64("live bitmap")?);
    }
    let live = Bitmap::from_words(words, nslots);
    let nfree = c.u32("free count")? as usize;
    if nfree > nslots {
        return Err(PersistError::Corrupt(format!("{nfree} free slots in {nslots}-slot table")));
    }
    let mut free = Vec::with_capacity(nfree);
    for _ in 0..nfree {
        let slot = c.u32("free slot")?;
        if slot as usize >= nslots || live.get(slot as usize) {
            return Err(PersistError::Corrupt(format!(
                "free slot {slot} out of range or live in table {name:?}"
            )));
        }
        free.push(slot as RowId);
    }
    let mut dicts = Vec::with_capacity(defs.len());
    for def in &defs {
        if v2 && def.dtype == DataType::Dict {
            dicts.push(Some(decode_dictionary(c)?));
        } else {
            dicts.push(None);
        }
    }
    Ok(TableHeader { name, defs, seg_rows, nslots, live, free, dicts })
}

fn decode_dictionary(c: &mut Cursor<'_>) -> Result<Dictionary, PersistError> {
    let dict_len = c.u32("dictionary size")? as usize;
    if dict_len > c.remaining() {
        return Err(PersistError::Corrupt(format!("dictionary size {dict_len} exceeds file size")));
    }
    let mut values = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        values.push(c.str("dictionary value")?);
    }
    if values.iter().enumerate().any(|(i, v)| values[..i].contains(v)) {
        return Err(PersistError::Corrupt("duplicate dictionary value".into()));
    }
    Ok(Dictionary::from_values(values))
}

/// Per-column accumulator for segment-wise decoding.
enum ColumnBuilder {
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str(StrColumn),
    Dict { codes: Vec<Key>, dict: Dictionary },
    Key { target: String, keys: Vec<Key> },
}

impl ColumnBuilder {
    fn new(dtype: &DataType, dict: Option<Dictionary>, capacity: usize) -> ColumnBuilder {
        match dtype {
            DataType::I32 => ColumnBuilder::I32(Vec::with_capacity(capacity)),
            DataType::I64 => ColumnBuilder::I64(Vec::with_capacity(capacity)),
            DataType::F64 => ColumnBuilder::F64(Vec::with_capacity(capacity)),
            DataType::Str => ColumnBuilder::Str(StrColumn::new()),
            DataType::Dict => ColumnBuilder::Dict {
                codes: Vec::with_capacity(capacity),
                dict: dict.expect("v2 table header carries the dictionary"),
            },
            DataType::Key { target } => {
                ColumnBuilder::Key { target: target.clone(), keys: Vec::with_capacity(capacity) }
            }
        }
    }

    /// Appends `n` rows decoded from `c`.
    fn extend(&mut self, c: &mut Cursor<'_>, n: usize) -> Result<(), PersistError> {
        match self {
            ColumnBuilder::I32(v) => {
                let raw = c.bytes(n * 4, "i32 column")?;
                v.extend(raw.chunks_exact(4).map(|b| i32::from_le_bytes(b.try_into().unwrap())));
            }
            ColumnBuilder::I64(v) => {
                let raw = c.bytes(n * 8, "i64 column")?;
                v.extend(raw.chunks_exact(8).map(|b| i64::from_le_bytes(b.try_into().unwrap())));
            }
            ColumnBuilder::F64(v) => {
                let raw = c.bytes(n * 8, "f64 column")?;
                v.extend(
                    raw.chunks_exact(8)
                        .map(|b| f64::from_bits(u64::from_le_bytes(b.try_into().unwrap()))),
                );
            }
            ColumnBuilder::Str(col) => {
                for _ in 0..n {
                    col.push(&c.str("string value")?);
                }
            }
            ColumnBuilder::Dict { codes, dict } => {
                for _ in 0..n {
                    let code = c.u32("dictionary code")?;
                    if code as usize >= dict.len() {
                        return Err(PersistError::Corrupt(format!(
                            "dictionary code {code} out of range {}",
                            dict.len()
                        )));
                    }
                    codes.push(code);
                }
            }
            ColumnBuilder::Key { keys, .. } => {
                let raw = c.bytes(n * 4, "key column")?;
                keys.extend(raw.chunks_exact(4).map(|b| u32::from_le_bytes(b.try_into().unwrap())));
            }
        }
        Ok(())
    }

    /// Appends `n` rows decoded from a compressed block, validating that
    /// every value fits the column's domain (an encoded block is an
    /// untrusted `i64` stream until proven otherwise).
    fn extend_decoded(&mut self, enc: &EncodedColumn, n: usize) -> Result<(), PersistError> {
        if enc.len() != n {
            return Err(PersistError::Corrupt(format!(
                "encoded block holds {} rows, segment needs {n}",
                enc.len()
            )));
        }
        let domain = |what: &str| PersistError::Corrupt(format!("encoded {what} out of range"));
        match self {
            ColumnBuilder::I32(v) => {
                for i in 0..n {
                    v.push(i32::try_from(enc.value_at(i)).map_err(|_| domain("i32 value"))?);
                }
            }
            ColumnBuilder::I64(v) => {
                for i in 0..n {
                    v.push(enc.value_at(i));
                }
            }
            ColumnBuilder::Dict { codes, dict } => {
                for i in 0..n {
                    let code = u32::try_from(enc.value_at(i))
                        .ok()
                        .filter(|&c| (c as usize) < dict.len())
                        .ok_or_else(|| domain("dictionary code"))?;
                    codes.push(code);
                }
            }
            ColumnBuilder::Key { keys, .. } => {
                for i in 0..n {
                    keys.push(u32::try_from(enc.value_at(i)).map_err(|_| domain("key"))?);
                }
            }
            ColumnBuilder::F64(_) | ColumnBuilder::Str(_) => {
                return Err(PersistError::Corrupt("encoded block on a float/string column".into()));
            }
        }
        Ok(())
    }

    fn finish(self) -> Column {
        match self {
            ColumnBuilder::I32(v) => Column::I32(v),
            ColumnBuilder::I64(v) => Column::I64(v),
            ColumnBuilder::F64(v) => Column::F64(v),
            ColumnBuilder::Str(c) => Column::Str(c),
            ColumnBuilder::Dict { codes, dict } => {
                Column::Dict(DictColumn::from_parts(codes, dict))
            }
            ColumnBuilder::Key { target, keys } => Column::Key { target, keys },
        }
    }
}

fn decode_zone_stats(c: &mut Cursor<'_>, arity: usize) -> Result<Vec<ZoneStats>, PersistError> {
    let mut stats = Vec::with_capacity(arity);
    for _ in 0..arity {
        let tag = c.bytes(1, "zone stat tag")?[0];
        stats.push(match tag {
            STAT_UNTRACKED => ZoneStats::Untracked,
            STAT_INT => {
                let min = i64::from_le_bytes(c.bytes(8, "zone int min")?.try_into().unwrap());
                let max = i64::from_le_bytes(c.bytes(8, "zone int max")?.try_into().unwrap());
                ZoneStats::Int { min, max }
            }
            STAT_FLOAT => {
                let min = f64::from_bits(c.u64("zone float min")?);
                let max = f64::from_bits(c.u64("zone float max")?);
                ZoneStats::Float { min, max }
            }
            STAT_KEY => {
                let min = c.u32("zone key min")?;
                let max = c.u32("zone key max")?;
                let nulls = c.u64("zone key nulls")?;
                ZoneStats::Key { min, max, nulls }
            }
            other => {
                return Err(PersistError::Corrupt(format!("unknown zone stat tag {other}")));
            }
        });
    }
    Ok(stats)
}

fn decode_table_v2(c: &mut Cursor<'_>) -> Result<Table, PersistError> {
    let header = decode_table_header(c, true)?;
    let nsegs = c.u32("segment count")? as usize;
    if nsegs != header.nslots.div_ceil(header.seg_rows) {
        return Err(PersistError::Corrupt(format!(
            "{nsegs} segments do not cover {} slots of table {:?}",
            header.nslots, header.name
        )));
    }
    let TableHeader { name, defs, seg_rows, nslots, live, free, dicts } = header;
    let mut builders: Vec<ColumnBuilder> = defs
        .iter()
        .zip(dicts)
        .map(|(d, dict)| ColumnBuilder::new(&d.dtype, dict, nslots))
        .collect();
    let mut zones = Vec::with_capacity(nsegs);
    for seg in 0..nsegs {
        let len = c.u32("segment length")? as usize;
        let payload = c.bytes(len, "segment payload")?;
        let stored = c.u32("segment crc")?;
        let actual = crc32(payload);
        if stored != actual {
            return Err(PersistError::Corrupt(format!(
                "segment {seg} of table {name:?} checksum mismatch \
                 (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
        let mut pc = Cursor::new(payload);
        let live_count = pc.u64("segment live count")?;
        let stats = decode_zone_stats(&mut pc, defs.len())?;
        let start = seg * seg_rows;
        let rows = (nslots - start).min(seg_rows);
        for b in &mut builders {
            b.extend(&mut pc, rows)?;
        }
        if pc.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes in segment {seg} of table {name:?}",
                pc.remaining()
            )));
        }
        zones.push(SegmentZone::from_parts(stats, live_count));
    }
    let columns: Vec<Column> = builders.into_iter().map(ColumnBuilder::finish).collect();
    Ok(Table::from_parts_with_zones(name, Schema::new(defs), columns, live, free, seg_rows, zones))
}

fn decode_table_v3(c: &mut Cursor<'_>) -> Result<Table, PersistError> {
    let header = decode_table_header(c, true)?;
    let nsegs = c.u32("segment count")? as usize;
    if nsegs != header.nslots.div_ceil(header.seg_rows) {
        return Err(PersistError::Corrupt(format!(
            "{nsegs} segments do not cover {} slots of table {:?}",
            header.nslots, header.name
        )));
    }
    let TableHeader { name, defs, seg_rows, nslots, live, free, dicts } = header;
    let mut builders: Vec<ColumnBuilder> = defs
        .iter()
        .zip(dicts)
        .map(|(d, dict)| ColumnBuilder::new(&d.dtype, dict, nslots))
        .collect();
    let mut zones = Vec::with_capacity(nsegs);
    let mut encodings: Vec<Option<SegmentEncoding>> = Vec::with_capacity(nsegs);
    for seg in 0..nsegs {
        let len = c.u32("segment length")? as usize;
        let payload = c.bytes(len, "segment payload")?;
        let stored = c.u32("segment crc")?;
        let actual = crc32(payload);
        if stored != actual {
            return Err(PersistError::Corrupt(format!(
                "segment {seg} of table {name:?} checksum mismatch \
                 (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
        let mut pc = Cursor::new(payload);
        let fmt = pc.bytes(1, "segment format")?[0];
        let live_count = pc.u64("segment live count")?;
        let stats = decode_zone_stats(&mut pc, defs.len())?;
        let start = seg * seg_rows;
        let rows = (nslots - start).min(seg_rows);
        match fmt {
            SEG_FMT_RAW => {
                for b in &mut builders {
                    b.extend(&mut pc, rows)?;
                }
                encodings.push(None);
            }
            SEG_FMT_ENCODED => {
                let mut cols = Vec::with_capacity(builders.len());
                for b in &mut builders {
                    let tag = pc.bytes(1, "column encoding tag")?[0];
                    let enc = match tag {
                        ENC_RAW => {
                            b.extend(&mut pc, rows)?;
                            None
                        }
                        ENC_PACKED => {
                            Some(EncodedColumn::Packed(decode_packed_block(&mut pc, payload)?))
                        }
                        ENC_RLE => Some(EncodedColumn::Rle(decode_rle_block(&mut pc, payload)?)),
                        other => {
                            return Err(PersistError::Corrupt(format!(
                                "unknown column encoding tag {other}"
                            )));
                        }
                    };
                    if let Some(enc) = &enc {
                        b.extend_decoded(enc, rows)?;
                    }
                    cols.push(enc);
                }
                encodings.push(Some(SegmentEncoding { cols }));
            }
            other => {
                return Err(PersistError::Corrupt(format!("unknown segment format {other}")));
            }
        }
        if pc.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes in segment {seg} of table {name:?}",
                pc.remaining()
            )));
        }
        zones.push(SegmentZone::from_parts(stats, live_count));
    }
    let columns: Vec<Column> = builders.into_iter().map(ColumnBuilder::finish).collect();
    let mut t =
        Table::from_parts_with_zones(name, Schema::new(defs), columns, live, free, seg_rows, zones);
    // Every per-column length was validated against the segment's row count
    // above, so this install cannot panic on decoded input.
    t.install_segment_encodings(encodings);
    Ok(t)
}

/// Decodes and CRC-checks one bit-packed column block; every packing
/// invariant is re-validated by [`PackedInts::from_parts`].
fn decode_packed_block(pc: &mut Cursor<'_>, payload: &[u8]) -> Result<PackedInts, PersistError> {
    let start = pc.position();
    let base = i64::from_le_bytes(pc.bytes(8, "packed base")?.try_into().unwrap());
    let has_null = pc.bytes(1, "packed null flag")?[0];
    if has_null > 1 {
        return Err(PersistError::Corrupt(format!("bad packed null flag {has_null}")));
    }
    let len = pc.u32("packed length")?;
    let max_code = pc.u64("packed max code")?;
    let nwords = pc.u32("packed word count")? as usize;
    if nwords > pc.remaining() / 8 {
        return Err(PersistError::Corrupt(format!("packed word count {nwords} exceeds block")));
    }
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(pc.u64("packed word")?);
    }
    check_block_crc(pc, payload, start, "packed")?;
    PackedInts::from_parts(base, len, max_code, has_null == 1, words)
        .ok_or_else(|| PersistError::Corrupt("packed block violates packing invariants".into()))
}

/// Decodes and CRC-checks one run-length column block; run monotonicity
/// and canonical form are re-validated by [`RleInts::from_parts`].
fn decode_rle_block(pc: &mut Cursor<'_>, payload: &[u8]) -> Result<RleInts, PersistError> {
    let start = pc.position();
    let nruns = pc.u32("rle run count")? as usize;
    if nruns > pc.remaining() / 12 {
        return Err(PersistError::Corrupt(format!("rle run count {nruns} exceeds block")));
    }
    let mut values = Vec::with_capacity(nruns);
    for _ in 0..nruns {
        values.push(i64::from_le_bytes(pc.bytes(8, "rle value")?.try_into().unwrap()));
    }
    let mut ends = Vec::with_capacity(nruns);
    for _ in 0..nruns {
        ends.push(pc.u32("rle end")?);
    }
    check_block_crc(pc, payload, start, "rle")?;
    RleInts::from_parts(values, ends)
        .ok_or_else(|| PersistError::Corrupt("rle block violates run invariants".into()))
}

/// Verifies the trailing CRC of an encoded column block spanning
/// `payload[start..]` up to the cursor's current position.
fn check_block_crc(
    pc: &mut Cursor<'_>,
    payload: &[u8],
    start: usize,
    what: &str,
) -> Result<(), PersistError> {
    let end = pc.position();
    let stored = pc.u32("encoded block crc")?;
    let actual = crc32(&payload[start..end]);
    if stored != actual {
        return Err(PersistError::Corrupt(format!(
            "{what} block checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(())
}

fn decode_table_v1(c: &mut Cursor<'_>) -> Result<Table, PersistError> {
    let header = decode_table_header(c, false)?;
    let mut columns = Vec::with_capacity(header.defs.len());
    for def in &header.defs {
        columns.push(decode_column_v1(c, &def.dtype, header.nslots)?);
    }
    Ok(Table::from_parts(header.name, Schema::new(header.defs), columns, header.live, header.free))
}

fn decode_column_v1(
    c: &mut Cursor<'_>,
    dtype: &DataType,
    n: usize,
) -> Result<Column, PersistError> {
    let dict = if *dtype == DataType::Dict { Some(decode_dictionary(c)?) } else { None };
    let mut b = ColumnBuilder::new(dtype, dict, n);
    b.extend(c, n)?;
    Ok(b.finish())
}

/// Saves `db` to `path` atomically (temp file in the same directory, fsync,
/// rename, then fsync of the parent directory so the rename itself is
/// durable — without it, a power loss could persist a later WAL reset while
/// the directory entry still points at the old snapshot, silently dropping
/// checkpointed writes). Records `wal_lsn` as the last WAL record folded
/// in. Returns the number of bytes written.
pub fn save_snapshot_with_lsn(
    db: &Database,
    path: impl AsRef<Path>,
    wal_lsn: u64,
) -> Result<usize, PersistError> {
    let bytes = encode_snapshot(db, wal_lsn);
    write_snapshot_bytes(path, &bytes)?;
    Ok(bytes.len())
}

/// Atomically replaces the snapshot at `path` with `bytes`.
pub(crate) fn write_snapshot_bytes(
    path: impl AsRef<Path>,
    bytes: &[u8],
) -> Result<(), PersistError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Windows cannot open directories as files; directory-entry
        // durability is a POSIX concern, so a failure here is non-fatal
        // there. On Unix, surface it: the rename is not durable without it.
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all()?,
            Err(_) if !cfg!(unix) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Saves a standalone snapshot (no WAL association).
pub fn save_snapshot(db: &Database, path: impl AsRef<Path>) -> Result<usize, PersistError> {
    save_snapshot_with_lsn(db, path, 0)
}

/// Loads a snapshot file, returning the database and the header's WAL LSN.
pub fn load_snapshot_with_lsn(path: impl AsRef<Path>) -> Result<(Database, u64), PersistError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

/// Loads a snapshot file.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Database, PersistError> {
    load_snapshot_with_lsn(path).map(|(db, _)| db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::types::{Value, NULL_KEY};

    /// A database exercising every column kind, deletes, free slots, a
    /// dynamic (non-sorted) dictionary, and multiple segments.
    fn kitchen_sink() -> Database {
        let mut dim = Table::new(
            "dim",
            Schema::new(vec![
                ColumnDef::new("d_tag", DataType::Dict),
                ColumnDef::new("d_note", DataType::Str),
            ]),
        );
        for (tag, note) in [("zulu", "first"), ("alpha", "secönd"), ("zulu", ""), ("mike", "x")] {
            dim.append_row(&[Value::Str(tag.into()), Value::Str(note.into())]);
        }
        dim.delete(2);
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_i32", DataType::I32),
                ColumnDef::new("f_i64", DataType::I64),
                ColumnDef::new("f_f64", DataType::F64),
            ]),
        );
        fact.set_segment_rows(2); // several segments even at toy scale
        fact.append_row(&[Value::Key(0), Value::Int(-5), Value::Int(1 << 40), Value::Float(2.5)]);
        fact.append_row(&[Value::Key(NULL_KEY), Value::Int(7), Value::Int(-1), Value::Float(-0.0)]);
        fact.append_row(&[Value::Key(3), Value::Int(0), Value::Int(0), Value::Float(f64::MIN)]);
        fact.delete(1);
        let mut db = Database::new();
        db.add_table(dim);
        db.add_table(fact);
        db
    }

    fn assert_same(a: &Database, b: &Database) {
        assert_eq!(a.table_names(), b.table_names());
        for name in a.table_names() {
            let (ta, tb) = (a.table(name).unwrap(), b.table(name).unwrap());
            assert_eq!(ta.num_slots(), tb.num_slots(), "{name}");
            assert_eq!(ta.live_bitmap(), tb.live_bitmap(), "{name}");
            assert_eq!(ta.free_slots(), tb.free_slots(), "{name}");
            assert_eq!(ta.schema().defs(), tb.schema().defs(), "{name}");
            for row in 0..ta.num_slots() as RowId {
                if ta.is_live(row) {
                    assert_eq!(ta.row(row), tb.row(row), "{name}[{row}]");
                }
            }
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = kitchen_sink();
        let bytes = encode_snapshot(&db, 42);
        let (back, lsn) = decode_snapshot(&bytes).unwrap();
        assert_eq!(lsn, 42);
        assert_same(&db, &back);
        // Dynamic dictionary code order survives (codes, not just values).
        let orig = db.table("dim").unwrap().column("d_tag").unwrap().as_dict().unwrap();
        let load = back.table("dim").unwrap().column("d_tag").unwrap().as_dict().unwrap();
        assert_eq!(orig.codes(), load.codes());
        assert_eq!(orig.dict().values(), load.dict().values());
    }

    #[test]
    fn roundtrip_preserves_zone_maps_and_segmentation() {
        let db = kitchen_sink();
        let (back, _) = decode_snapshot(&encode_snapshot(&db, 0)).unwrap();
        let (orig, load) = (db.table("fact").unwrap(), back.table("fact").unwrap());
        assert_eq!(orig.segment_rows(), load.segment_rows());
        assert_eq!(orig.segment_count(), load.segment_count());
        for seg in 0..orig.segment_count() {
            assert_eq!(orig.zone(seg).stats(), load.zone(seg).stats(), "segment {seg}");
            assert_eq!(orig.zone(seg).live(), load.zone(seg).live(), "segment {seg}");
            assert!(!load.zone(seg).is_dirty(), "loaded segments are clean");
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode_snapshot(&kitchen_sink(), 7), encode_snapshot(&kitchen_sink(), 7));
        assert_eq!(
            encode_snapshot(&sealed_kitchen_sink(), 7),
            encode_snapshot(&sealed_kitchen_sink(), 7)
        );
    }

    /// The kitchen sink with every segment sealed (encoded where smaller).
    fn sealed_kitchen_sink() -> Database {
        let mut db = kitchen_sink();
        // The toy tables are too small for packing to win; widen the fact
        // table so at least one segment genuinely encodes.
        let fact = db.table_mut("fact").unwrap();
        for i in 0..256 {
            fact.append_row(&[
                Value::Key(i % 4),
                Value::Int(i64::from(1000 + (i % 50))),
                Value::Int(i64::from(i / 128)),
                Value::Float(0.25),
            ]);
        }
        for name in ["dim", "fact"] {
            db.table_mut(name).unwrap().seal_segments();
        }
        db
    }

    #[test]
    fn sealed_roundtrip_reinstalls_encodings() {
        let db = sealed_kitchen_sink();
        let fact = db.table("fact").unwrap();
        let sealed: usize = (0..fact.segment_count())
            .filter(|&s| fact.encoding(s).is_some_and(|e| e.encoded_cols() > 0))
            .count();
        assert!(sealed > 0, "fixture must actually encode something");

        let bytes = encode_snapshot(&db, 21);
        let (back, lsn) = decode_snapshot(&bytes).unwrap();
        assert_eq!(lsn, 21);
        assert_same(&db, &back);
        let bfact = back.table("fact").unwrap();
        for seg in 0..fact.segment_count() {
            let orig = fact.encoding(seg).filter(|e| e.encoded_cols() > 0);
            let load = bfact.encoding(seg).filter(|e| e.encoded_cols() > 0);
            assert_eq!(orig, load, "segment {seg} encodings survive the roundtrip");
            assert!(!bfact.zone(seg).is_dirty(), "loaded segments are clean");
        }
        // Deterministic re-encode: a loaded, sealed database writes the
        // same bytes (install_segment_encodings preserved every word/run).
        assert_eq!(encode_snapshot(&back, 21), bytes);
        // And the compressed footprint is genuinely smaller.
        let (enc, raw) = bfact.encoded_footprint();
        assert!(enc < raw, "encoded {enc} must beat raw {raw}");
    }

    #[test]
    fn stale_or_partial_seals_checkpoint_raw_and_roundtrip() {
        // Write-throughs after a seal leave the encoding stale (and appends
        // leave it short); the snapshot must persist such segments raw —
        // never a superseded or truncated encoded block — and the loaded
        // image must carry the *current* flat values.
        let mut db = sealed_kitchen_sink();
        let fact = db.table_mut("fact").unwrap();
        let seg = (0..fact.segment_count())
            .find(|&s| fact.encoding(s).is_some_and(|e| e.encoded_cols() > 0))
            .expect("fixture must encode at least one segment");
        let row = (seg * 2..seg * 2 + 2)
            .map(|r| r as u32)
            .find(|&r| fact.is_live(r))
            .expect("an encoded segment has a live row");
        fact.update(row, "f_i64", &Value::Int(777_777));
        fact.append_row(&[Value::Key(1), Value::Int(9), Value::Int(9), Value::Float(1.5)]);
        assert!(fact.encoding(seg).is_some(), "seal survives the write-through");
        assert!(!fact.segment_stale(seg).is_empty());

        let bytes = encode_snapshot(&db, 7);
        let (back, _) = decode_snapshot(&bytes).unwrap();
        assert_same(&db, &back);
        let bfact = back.table("fact").unwrap();
        assert_eq!(bfact.row(row)[2], Value::Int(777_777), "current value persisted");
        assert!(
            bfact.encoding(seg).is_none_or(|e| e.encoded_cols() == 0),
            "stale segment persisted raw, not encoded"
        );
        let last = bfact.segment_count() - 1;
        assert!(
            bfact.encoding(last).is_none_or(|e| e.encoded_cols() == 0),
            "partial-coverage segment persisted raw"
        );
    }

    #[test]
    fn sealed_incremental_encode_reuses_encoded_blocks() {
        let db = sealed_kitchen_sink();
        let bytes = encode_snapshot(&db, 5);
        let (back, _) = decode_snapshot(&bytes).unwrap();
        let index = index_snapshot_segments(&bytes).unwrap();
        let nsegs = index.len();
        let (inc, reused) = encode_snapshot_with_prev(&back, 5, Some(&index));
        assert_eq!(reused, nsegs, "a loaded sealed database reuses every block");
        assert_eq!(inc, bytes);
    }

    #[test]
    fn v2_files_still_load_without_encodings() {
        let db = sealed_kitchen_sink();
        let bytes = encode_snapshot_v2(&db, 13);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), SNAPSHOT_VERSION_V2);
        let (back, lsn) = decode_snapshot(&bytes).unwrap();
        assert_eq!(lsn, 13);
        assert_same(&db, &back);
        // Zone maps survive verbatim; encodings do not exist in v2, so the
        // tables come up unsealed (a boot-time seal rebuilds them).
        let fact = back.table("fact").unwrap();
        assert_eq!(fact.segment_rows(), db.table("fact").unwrap().segment_rows());
        assert!(fact.encodings().iter().all(Option::is_none), "v2 loads are unsealed");
        // v2 blocks are not reusable by a v3 checkpoint.
        assert!(index_snapshot_segments(&bytes).is_none());
    }

    #[test]
    fn corrupt_encoded_block_is_pinpointed() {
        let db = sealed_kitchen_sink();
        let good = encode_snapshot(&db, 0);
        // Find a packed block by its tag bytes: scan for any segment
        // payload and flip a byte inside it while fixing the outer CRCs is
        // fiddly — instead corrupt through the public surface: flip each
        // byte and require *an* error (the whole-file CRC backstops), then
        // separately prove from_parts-level validation fires by decoding a
        // hand-bent block.
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0x40;
        assert!(decode_snapshot(&bad).is_err());
        // A structurally invalid packed block (nonzero guard bit) must be
        // rejected even with a correct block CRC.
        let p = PackedInts::from_parts(0, 3, 5, false, vec![1 | (1 << 3)]);
        assert!(p.is_none(), "guard-bit violation must not reassemble");
    }

    #[test]
    fn v1_files_still_load_with_rebuilt_zone_maps() {
        let db = kitchen_sink();
        let bytes = encode_snapshot_v1(&db, 11);
        let (back, lsn) = decode_snapshot(&bytes).unwrap();
        assert_eq!(lsn, 11);
        assert_same(&db, &back);
        // Zone maps are rebuilt on load: default segment size, exact stats.
        let fact = back.table("fact").unwrap();
        assert_eq!(fact.segment_rows(), astore_storage::segment::SEGMENT_ROWS);
        assert_eq!(fact.segment_count(), 1);
        assert_eq!(
            fact.zone(0).stat(1),
            &ZoneStats::Int { min: -5, max: 0 },
            "v1 load rebuilds exact bounds over live rows"
        );
    }

    #[test]
    fn incremental_encode_reuses_clean_segments_byte_identically() {
        let db = kitchen_sink();
        let bytes = encode_snapshot(&db, 5);
        // A loaded database is all-clean relative to those bytes.
        let (mut back, _) = decode_snapshot(&bytes).unwrap();
        let index = index_snapshot_segments(&bytes).unwrap();
        assert_eq!(index.len(), 1 + 2, "dim has 1 segment, fact has 2");

        // No mutation: everything reuses, bytes identical to a full encode.
        let (inc, reused) = encode_snapshot_with_prev(&back, 5, Some(&index));
        assert_eq!(reused, 3);
        assert_eq!(inc, encode_snapshot(&back, 5), "reused encode must be byte-identical");

        // Mutate one fact segment: only it re-encodes; bytes still match.
        back.table_mut("fact").unwrap().update(0, "f_i32", &Value::Int(99));
        let (inc, reused) = encode_snapshot_with_prev(&back, 6, Some(&index));
        assert_eq!(reused, 2, "dim + the untouched fact segment reuse");
        assert_eq!(inc, encode_snapshot(&back, 6));
        let (again, _) = decode_snapshot(&inc).unwrap();
        assert_same(&back, &again);
    }

    #[test]
    fn v1_files_are_not_indexable_for_reuse() {
        assert!(index_snapshot_segments(&encode_snapshot_v1(&kitchen_sink(), 0)).is_none());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("astore-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.snapshot");
        let db = kitchen_sink();
        let n = save_snapshot_with_lsn(&db, &path, 9).unwrap();
        assert_eq!(n, std::fs::metadata(&path).unwrap().len() as usize);
        let (back, lsn) = load_snapshot_with_lsn(&path).unwrap();
        assert_eq!(lsn, 9);
        assert_same(&db, &back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_snapshot(&kitchen_sink(), 0);
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut at {cut} must be detected");
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        for bytes in [
            encode_snapshot(&kitchen_sink(), 0),
            encode_snapshot(&sealed_kitchen_sink(), 0),
            encode_snapshot_v2(&kitchen_sink(), 0),
            encode_snapshot_v1(&kitchen_sink(), 0),
        ] {
            // Flip one bit in every byte (covers header, zone stats, segment
            // frames, payload and trailer).
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x10;
                assert!(decode_snapshot(&bad).is_err(), "flip at byte {i} must be detected");
            }
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_snapshot(&kitchen_sink(), 0);
        bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        match decode_snapshot(&bytes) {
            Err(PersistError::Version { found, expected }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let (back, _) = decode_snapshot(&encode_snapshot(&db, 0)).unwrap();
        assert!(back.is_empty());
    }
}
