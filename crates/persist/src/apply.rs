//! Validated application of write statements to a [`Database`].
//!
//! This is the single write path shared by the serving layer (which calls
//! it inside `SharedDatabase::write`, after logging to the WAL) and by
//! crash recovery (which replays the WAL through the very same code, so a
//! recovered database is byte-identical to one that never crashed).
//!
//! Every statement is validated *before* any mutation: a rejected statement
//! leaves the database untouched, and no storage-layer `panic!` can escape.

use astore_sql::prepared::{BoundStatement, ParamError, Prepared};
use astore_sql::statement::Statement;
use astore_storage::catalog::Database;
use astore_storage::table::Table;
use astore_storage::types::{DataType, RowId, Value};

/// Validates one write statement without mutating anything. After an `Ok`,
/// [`apply_statement`] on the same database state cannot fail — which is
/// what lets the serving layer WAL-log *between* validation and mutation:
/// an append failure then leaves memory, log and client view all agreeing
/// that the write never happened.
pub fn validate_statement(db: &Database, stmt: &Statement) -> Result<(), String> {
    match stmt {
        Statement::Insert { table, rows } => {
            let t = db.table(table).ok_or_else(|| format!("no table {table:?}"))?;
            for (i, row) in rows.iter().enumerate() {
                check_row(db, t, row).map_err(|e| format!("row {i}: {e}"))?;
            }
            Ok(())
        }
        Statement::Update { table, assignments, row } => {
            let t = db.table(table).ok_or_else(|| format!("no table {table:?}"))?;
            check_live(t, *row)?;
            for (col, v) in assignments {
                let def = t
                    .schema()
                    .defs()
                    .iter()
                    .find(|d| d.name == *col)
                    .ok_or_else(|| format!("no column {col:?} in {table:?}"))?;
                check_value(db, &def.dtype, v).map_err(|e| format!("column {col:?}: {e}"))?;
            }
            Ok(())
        }
        Statement::Delete { table, .. } => {
            db.table(table).ok_or_else(|| format!("no table {table:?}"))?;
            // A deleted slot goes on the free list and is recycled by the
            // next INSERT; any AIR column still pointing at it would then
            // silently rebind to an unrelated row. Refuse deletes from
            // referenced (dimension) tables — the paper deletes facts and
            // reclaims dimensions via consolidation.
            if let Some(referrer) = air_referrer(db, table) {
                return Err(format!(
                    "cannot delete from {table:?}: its rows are referenced by AIR column(s) \
                     of {referrer:?}; delete the referencing rows and consolidate instead"
                ));
            }
            Ok(())
        }
        Statement::Select(_) => Err("SELECT is not a write statement".into()),
    }
}

/// Applies one write statement, returning the number of affected rows.
/// Validation happens up front; on `Err` the database is unchanged.
pub fn apply_statement(db: &mut Database, stmt: &Statement) -> Result<usize, String> {
    validate_statement(db, stmt)?;
    Ok(apply_validated(db, stmt))
}

/// Why a prepared write failed to apply.
#[derive(Debug, Clone, PartialEq)]
pub enum ApplyError {
    /// Parameter binding failed (wrong count or kind).
    Param(ParamError),
    /// The bound statement failed validation (unknown table, dangling key,
    /// dead row, …) — the database is untouched.
    Invalid(String),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::Param(e) => write!(f, "{e}"),
            ApplyError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// Binds a prepared write template to `params`, validates the resulting
/// statement and applies it — the prepared-statement flavour of
/// [`apply_statement`], shared by the embedded connection API and the
/// serving layer's execute path. Returns `(affected rows, bound
/// statement)`; the bound statement is what the caller WAL-logs (via
/// [`Statement::to_sql`]) so replay sees the same concrete write.
pub fn apply_prepared(
    db: &mut Database,
    prepared: &Prepared,
    params: &[Value],
) -> Result<(usize, Statement), ApplyError> {
    let stmt = match prepared.bind(params).map_err(ApplyError::Param)? {
        BoundStatement::Write(s) => s,
        BoundStatement::Select(_) => {
            return Err(ApplyError::Invalid("SELECT is not a write statement".into()))
        }
    };
    let n = apply_statement(db, &stmt).map_err(ApplyError::Invalid)?;
    Ok((n, stmt))
}

/// Mutation half of [`apply_statement`]; must only run after
/// [`validate_statement`] succeeded on the same state.
fn apply_validated(db: &mut Database, stmt: &Statement) -> usize {
    match stmt {
        Statement::Insert { table, rows } => {
            let t = db.table_mut(table).expect("validated");
            for row in rows {
                t.insert(row);
            }
            rows.len()
        }
        Statement::Update { table, assignments, row } => {
            let t = db.table_mut(table).expect("validated");
            for (col, v) in assignments {
                t.update(*row, col, v);
            }
            1
        }
        Statement::Delete { table, row } => {
            let t = db.table_mut(table).expect("validated");
            usize::from(t.delete(*row))
        }
        Statement::Select(_) => unreachable!("validate_statement rejects SELECT"),
    }
}

/// The name of some table holding an AIR column that targets `table`
/// (`None` if nothing references it).
fn air_referrer(db: &Database, table: &str) -> Option<String> {
    db.table_names().iter().find_map(|name| {
        let refers = db.table(name).is_some_and(|t| {
            t.schema()
                .defs()
                .iter()
                .any(|d| matches!(&d.dtype, DataType::Key { target } if target == table))
        });
        refers.then(|| name.clone())
    })
}

fn check_live(t: &Table, row: RowId) -> Result<(), String> {
    if (row as usize) < t.num_slots() && t.is_live(row) {
        Ok(())
    } else {
        Err(format!("row {row} does not exist or is deleted"))
    }
}

fn check_row(db: &Database, t: &Table, row: &[Value]) -> Result<(), String> {
    if row.len() != t.schema().arity() {
        return Err(format!("arity mismatch: got {}, table has {}", row.len(), t.schema().arity()));
    }
    for (def, v) in t.schema().defs().iter().zip(row) {
        check_value(db, &def.dtype, v).map_err(|e| format!("column {:?}: {e}", def.name))?;
    }
    Ok(())
}

/// Type/bounds check for one literal against a column type. AIR (key)
/// columns take integer literals and are bounds-checked against the target
/// table so the store can never hold a dangling reference.
fn check_value(db: &Database, dtype: &DataType, v: &Value) -> Result<(), String> {
    match (dtype, v) {
        (DataType::I32, Value::Int(x)) => {
            i32::try_from(*x).map(|_| ()).map_err(|_| format!("{x} overflows a 32-bit column"))
        }
        (DataType::I64 | DataType::F64, Value::Int(_)) => Ok(()),
        (DataType::F64, Value::Float(_)) => Ok(()),
        (DataType::Str | DataType::Dict, Value::Str(_)) => Ok(()),
        (DataType::Key { target }, Value::Int(k)) => {
            let t =
                db.table(target).ok_or_else(|| format!("key target table {target:?} missing"))?;
            if *k >= 0 && (*k as usize) < t.num_slots() && t.is_live(*k as RowId) {
                Ok(())
            } else {
                Err(format!("key {k} does not reference a live {target:?} row"))
            }
        }
        (DataType::Key { target }, Value::Key(k)) => {
            check_value(db, &DataType::Key { target: target.clone() }, &Value::Int(i64::from(*k)))
        }
        (dt, v) => Err(format!("cannot store {v:?} in a {dt:?} column")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_sql::statement::parse_statement;
    use astore_storage::table::{ColumnDef, Schema};

    fn star() -> Database {
        let mut dim = Table::new("dim", Schema::new(vec![ColumnDef::new("v", DataType::I32)]));
        dim.append_row(&[Value::Int(1)]);
        dim.append_row(&[Value::Int(2)]);
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Key { target: "dim".into() }),
                ColumnDef::new("m", DataType::I64),
            ]),
        );
        fact.append_row(&[Value::Key(0), Value::Int(10)]);
        let mut db = Database::new();
        db.add_table(dim);
        db.add_table(fact);
        db
    }

    fn apply_sql(db: &mut Database, sql: &str) -> Result<usize, String> {
        apply_statement(db, &parse_statement(sql).unwrap())
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let mut db = star();
        assert_eq!(apply_sql(&mut db, "INSERT INTO fact VALUES (1, 20), (0, 30)"), Ok(2));
        assert_eq!(apply_sql(&mut db, "UPDATE fact SET m = 99 WHERE rowid = 0"), Ok(1));
        assert_eq!(apply_sql(&mut db, "DELETE FROM fact WHERE rowid = 1"), Ok(1));
        let fact = db.table("fact").unwrap();
        assert_eq!(fact.num_live(), 2);
        assert_eq!(fact.row(0)[1], Value::Int(99));
    }

    #[test]
    fn invalid_statements_leave_db_untouched() {
        let mut db = star();
        for bad in [
            "INSERT INTO nope VALUES (1)",
            "INSERT INTO fact VALUES (1)",
            "INSERT INTO fact VALUES (0, 1), (5, 2)", // dangling key in later row
            "UPDATE fact SET nope = 1 WHERE rowid = 0",
            "UPDATE fact SET m = 1 WHERE rowid = 9",
            "DELETE FROM dim WHERE rowid = 0", // AIR-referenced dimension
        ] {
            assert!(apply_sql(&mut db, bad).is_err(), "{bad}");
        }
        assert_eq!(db.table("fact").unwrap().num_live(), 1);
        assert_eq!(db.table("dim").unwrap().num_live(), 2);
    }

    #[test]
    fn replay_is_deterministic() {
        let stmts = [
            "INSERT INTO fact VALUES (1, 20)",
            "UPDATE fact SET m = -1 WHERE rowid = 1",
            "DELETE FROM fact WHERE rowid = 0",
            "INSERT INTO fact VALUES (0, 7)", // reuses slot 0
        ];
        let mut a = star();
        let mut b = star();
        for s in stmts {
            apply_sql(&mut a, s).unwrap();
            apply_sql(&mut b, s).unwrap();
        }
        for name in ["dim", "fact"] {
            let (ta, tb) = (a.table(name).unwrap(), b.table(name).unwrap());
            assert_eq!(ta.live_bitmap(), tb.live_bitmap());
            assert_eq!(ta.free_slots(), tb.free_slots());
            for r in 0..ta.num_slots() as RowId {
                assert_eq!(ta.row(r), tb.row(r));
            }
        }
    }
}
