//! Data-directory orchestration: snapshot + WAL as one restartable unit.
//!
//! A data directory holds exactly two files:
//!
//! ```text
//! <dir>/db.snapshot   the last checkpointed database image
//! <dir>/db.wal        committed writes since that checkpoint
//! ```
//!
//! The lifecycle is: [`bootstrap`] once (seed database → snapshot + empty
//! WAL), then [`open`] on every boot (load snapshot, replay the WAL's
//! committed prefix through [`crate::apply`], truncate any torn tail), and
//! [`checkpoint`] whenever the WAL has grown enough to be worth folding
//! back into the snapshot. Checkpointing is crash-safe in both directions:
//! the snapshot is replaced by atomic rename, and because replay skips
//! records with LSN ≤ the snapshot's header LSN, a crash *between* the
//! rename and the WAL reset merely leaves stale records that the next boot
//! ignores.

use std::path::{Path, PathBuf};

use astore_sql::statement::parse_statement;
use astore_storage::catalog::Database;

use crate::apply::apply_statement;
use crate::snapshot::{load_snapshot_with_lsn, save_snapshot_with_lsn};
use crate::wal::Wal;
use crate::PersistError;

/// Snapshot file name inside a data directory.
pub const SNAPSHOT_FILE: &str = "db.snapshot";
/// WAL file name inside a data directory.
pub const WAL_FILE: &str = "db.wal";

/// A database recovered (or bootstrapped) from a data directory, plus the
/// open WAL ready for new appends.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered database image.
    pub db: Database,
    /// The open log; new writes append here.
    pub wal: Wal,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// `true` if a torn tail was truncated during recovery.
    pub truncated_tail: bool,
}

/// The snapshot path inside `dir`.
pub fn snapshot_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(SNAPSHOT_FILE)
}

/// The WAL path inside `dir`.
pub fn wal_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(WAL_FILE)
}

/// Returns `true` if `dir` holds a snapshot to recover from.
pub fn is_initialized(dir: impl AsRef<Path>) -> bool {
    snapshot_path(dir).is_file()
}

/// Initializes a data directory from a seed database: writes the initial
/// snapshot and an empty WAL. Any pre-existing files are replaced.
pub fn bootstrap(dir: impl AsRef<Path>, db: &Database) -> Result<Wal, PersistError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    // Drop a stale WAL *before* the snapshot lands so a crash in between
    // cannot pair the new snapshot with old records. (Their LSNs ≤ the new
    // header LSN would be skipped anyway; this keeps the directory tidy.)
    let _ = std::fs::remove_file(wal_path(dir));
    save_snapshot_with_lsn(db, snapshot_path(dir), 0)?;
    let (wal, _) = Wal::open(wal_path(dir), 1)?;
    Ok(wal)
}

/// Recovers the database from `dir`: loads the snapshot, replays every
/// committed WAL record newer than the snapshot, truncates any torn tail.
pub fn open(dir: impl AsRef<Path>) -> Result<Recovered, PersistError> {
    let dir = dir.as_ref();
    let (mut db, snapshot_lsn) = load_snapshot_with_lsn(snapshot_path(dir))?;
    let (wal, scan) = Wal::open(wal_path(dir), snapshot_lsn + 1)?;
    let mut replayed = 0usize;
    for rec in &scan.records {
        if rec.lsn <= snapshot_lsn {
            // Already folded into the snapshot by a checkpoint that crashed
            // before resetting the log.
            continue;
        }
        let stmt = parse_statement(&rec.sql).map_err(|e| {
            PersistError::Corrupt(format!("WAL record {} does not parse: {e}", rec.lsn))
        })?;
        apply_statement(&mut db, &stmt).map_err(|e| {
            PersistError::Corrupt(format!("WAL record {} failed to apply: {e}", rec.lsn))
        })?;
        replayed += 1;
    }
    Ok(Recovered { db, wal, replayed, truncated_tail: scan.torn })
}

/// Folds the current database image into a fresh snapshot and resets the
/// WAL. `last_lsn` must be the LSN of the last record applied to `db`
/// (i.e. [`Wal::last_lsn`] at the moment `db` was fixed). Returns the
/// snapshot size in bytes.
///
/// The checkpoint is **incremental at segment granularity**: segments not
/// mutated since `db` was loaded from (or last checkpointed to) this data
/// directory are byte-copied from the existing snapshot file instead of
/// re-encoded — the output is byte-identical either way because encoding is
/// deterministic. Afterwards every segment is marked clean, making the new
/// file the reuse baseline for the next checkpoint. Because the clean flags
/// are relative to *this directory's* snapshot, `db` must be a database
/// that was opened from (or bootstrapped into) `dir`.
///
/// The caller must hold the database still for the duration (the serving
/// layer runs this inside its write latch).
pub fn checkpoint(
    dir: impl AsRef<Path>,
    db: &mut Database,
    wal: &mut Wal,
) -> Result<usize, PersistError> {
    let dir = dir.as_ref();
    let last = wal.last_lsn();
    // Seal before encoding so the snapshot persists the compressed segment
    // form (newly sealed segments come out dirty and re-encode; segments
    // sealed by an earlier checkpoint stay clean and byte-reuse). In-place
    // only — a table shared with in-flight readers is never deep-cloned
    // for a seal; it checkpoints raw this round and seals at the next.
    for name in db.table_names().to_vec() {
        if let Some(t) = db.table_mut_in_place(&name) {
            t.seal_segments();
        }
    }
    let bytes = write_checkpoint(dir, db, last)?;
    wal.reset(last)?;
    for name in db.table_names().to_vec() {
        // Flipping the clean flags is metadata only — never worth a
        // copy-on-write deep clone under the caller's write latch. Tables
        // with nothing dirty are skipped outright; a table still shared
        // with in-flight readers keeps its dirty flags and is simply
        // re-encoded in full at the next checkpoint (CPU, not
        // correctness).
        let dirty = db.table(&name).is_some_and(|t| t.zones().iter().any(|z| z.is_dirty()));
        if dirty {
            if let Some(t) = db.table_mut_in_place(&name) {
                t.mark_segments_clean();
            }
        }
    }
    Ok(bytes)
}

/// The encode-and-write half of a checkpoint, usable from a *shared*
/// snapshot: folds `db` into `<dir>/db.snapshot` stamped with `last_lsn`
/// (incremental at segment granularity against the previous file) and
/// returns the snapshot size in bytes. Touches neither the WAL nor the
/// tables' clean flags — the caller sequences those (see
/// [`checkpoint`] for the embedded one-latch variant; the server runs this
/// from a COW snapshot outside its commit lock and then truncates the WAL
/// and marks segments clean in two brief latched phases).
pub fn write_checkpoint(
    dir: impl AsRef<Path>,
    db: &Database,
    last_lsn: u64,
) -> Result<usize, PersistError> {
    let sample = crate::metrics::TimedSample::start();
    let dir = dir.as_ref();
    // The index borrows the previous file's bytes — one read, no copies.
    let prev_bytes = std::fs::read(snapshot_path(dir)).ok();
    let prev = prev_bytes.as_deref().and_then(crate::snapshot::index_snapshot_segments);
    let (bytes, _reused) = crate::snapshot::encode_snapshot_with_prev(db, last_lsn, prev.as_ref());
    crate::snapshot::write_snapshot_bytes(snapshot_path(dir), &bytes)?;
    use std::sync::atomic::Ordering;
    crate::metrics::checkpoints_total().fetch_add(1, Ordering::Relaxed);
    crate::metrics::checkpoint_bytes_total().fetch_add(bytes.len() as u64, Ordering::Relaxed);
    sample.stop(crate::metrics::checkpoint_us_total());
    Ok(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::table::{ColumnDef, Schema, Table};
    use astore_storage::types::{DataType, Value};

    fn seed() -> Database {
        let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        for i in 0..3 {
            t.append_row(&[Value::Int(i)]);
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("astore-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sum(db: &Database) -> i64 {
        let t = db.table("t").unwrap();
        (0..t.num_slots() as u32)
            .filter(|&r| t.is_live(r))
            .map(|r| t.row(r)[0].as_int().unwrap())
            .sum()
    }

    #[test]
    fn bootstrap_then_open_roundtrip() {
        let dir = tmpdir("boot");
        assert!(!is_initialized(&dir));
        let mut wal = bootstrap(&dir, &seed()).unwrap();
        assert!(is_initialized(&dir));
        wal.append("INSERT INTO t VALUES (10)").unwrap();
        wal.append("UPDATE t SET v = 100 WHERE rowid = 0").unwrap();
        drop(wal);
        let rec = open(&dir).unwrap();
        assert_eq!(rec.replayed, 2);
        assert_eq!(sum(&rec.db), 100 + 1 + 2 + 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_folds_wal_into_snapshot() {
        let dir = tmpdir("ckpt");
        let mut db = seed();
        let mut wal = bootstrap(&dir, &db).unwrap();
        for sql in ["INSERT INTO t VALUES (10)", "DELETE FROM t WHERE rowid = 1"] {
            let stmt = parse_statement(sql).unwrap();
            apply_statement(&mut db, &stmt).unwrap();
            wal.append(sql).unwrap();
        }
        checkpoint(&dir, &mut db, &mut wal).unwrap();
        assert_eq!(wal.appended_since_reset(), 0);
        // More writes after the checkpoint.
        let sql = "INSERT INTO t VALUES (50)";
        apply_statement(&mut db, &parse_statement(sql).unwrap()).unwrap();
        wal.append(sql).unwrap();
        drop(wal);
        let rec = open(&dir).unwrap();
        assert_eq!(rec.replayed, 1, "only the post-checkpoint record replays");
        assert_eq!(sum(&rec.db), sum(&db));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_checkpoint_is_not_double_applied() {
        // Simulate: checkpoint wrote the new snapshot (with LSN) but crashed
        // before resetting the WAL → stale records with old LSNs remain.
        let dir = tmpdir("crashckpt");
        let mut db = seed();
        let mut wal = bootstrap(&dir, &db).unwrap();
        let sql = "INSERT INTO t VALUES (10)";
        apply_statement(&mut db, &parse_statement(sql).unwrap()).unwrap();
        wal.append(sql).unwrap();
        // Snapshot written with the current last LSN, WAL NOT reset.
        save_snapshot_with_lsn(&db, snapshot_path(&dir), wal.last_lsn()).unwrap();
        drop(wal);
        let rec = open(&dir).unwrap();
        assert_eq!(rec.replayed, 0, "stale record skipped by LSN");
        assert_eq!(sum(&rec.db), sum(&db), "no double apply");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lsns_continue_after_recovery() {
        let dir = tmpdir("lsn");
        let mut wal = bootstrap(&dir, &seed()).unwrap();
        wal.append("INSERT INTO t VALUES (1)").unwrap();
        drop(wal);
        let mut rec = open(&dir).unwrap();
        let lsn = rec.wal.append("INSERT INTO t VALUES (2)").unwrap();
        assert_eq!(lsn, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
