//! CRC-32 (IEEE 802.3 polynomial, the same one zlib/gzip/PNG use), table
//! driven. Both the snapshot trailer and every WAL record are protected by
//! this checksum; it is what lets recovery distinguish a torn tail from a
//! committed record.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (init `!0`, final xor `!0` — the standard presentation).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = b"the quick brown fox".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
