//! The write-ahead log.
//!
//! Append-only file of CRC-framed records, one per committed write
//! *batch* (group commit: every statement the leader drained in one turn).
//! Each statement carries a monotonically increasing log sequence number
//! (LSN); the snapshot header records the last LSN folded into it, so
//! replay after a checkpoint race skips records the snapshot already
//! contains instead of double-applying them.
//!
//! ## Layout (version 2, little-endian)
//!
//! ```text
//! header   "ASTOREWL" + u32 version                 (12 bytes)
//! record*:
//!   len    u32    body length in bytes
//!   crc    u32    CRC-32 of the body
//!   body   u64 first LSN + u32 count
//!          + count × (u32 len + statement SQL text, UTF-8)
//! ```
//!
//! Statement `i` of a batch has LSN `first + i`. Version-1 files (one
//! statement per record, body = `u64 LSN + SQL`) are still read, and
//! [`Wal::open`] upgrades them to version 2 in place via atomic rename.
//!
//! A record *commits* by being fully written and fsynced — the whole batch
//! or nothing: the CRC covers the full body, so a crash mid-batch fails the
//! checksum and recovery never surfaces a partial batch. Reading stops at
//! the first frame that is truncated, oversized, checksum-mismatched or not
//! UTF-8 — everything before it is the committed prefix, everything from it
//! on is a torn tail that [`Wal::open`] truncates away. Recovery therefore
//! always yields a prefix of the acknowledged write batches, no matter
//! where in a byte stream the crash landed.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::wire::{put_u32, put_u64};
use crate::PersistError;

/// File magic of the WAL format.
pub const WAL_MAGIC: &[u8; 8] = b"ASTOREWL";

/// Current WAL format version (batched records; see the module docs).
pub const WAL_VERSION: u32 = 2;

const HEADER_LEN: usize = 12;

/// Upper bound on one record body; larger length prefixes are treated as
/// corruption (they would otherwise drive a huge allocation).
pub const MAX_RECORD_BYTES: usize = 1 << 24;

/// One committed WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The logged statement text.
    pub sql: String,
}

/// The committed prefix of a WAL byte stream.
#[derive(Debug)]
pub struct WalScan {
    /// Committed records, in commit order.
    pub records: Vec<WalRecord>,
    /// Byte offset one past the last committed record — the length a
    /// torn-tail truncation should cut the file to.
    pub committed_len: usize,
    /// `true` if bytes after `committed_len` were ignored (torn tail or
    /// corrupt record).
    pub torn: bool,
}

/// Decodes a WAL byte stream into its committed prefix. Never panics on any
/// input; a missing/bad header yields an empty scan at offset
/// `committed_len == 0` with `torn` set (so opening truncates to a fresh
/// header).
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let version = wal_header_version(bytes);
    if !matches!(version, Some(1 | 2)) {
        return WalScan { records: Vec::new(), committed_len: 0, torn: !bytes.is_empty() };
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return WalScan { records, committed_len: pos, torn: false };
        }
        if rest.len() < 8 {
            return WalScan { records, committed_len: pos, torn: true };
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if !(8..=MAX_RECORD_BYTES).contains(&len) || rest.len() < 8 + len {
            return WalScan { records, committed_len: pos, torn: true };
        }
        let body = &rest[8..8 + len];
        if crc32(body) != crc {
            return WalScan { records, committed_len: pos, torn: true };
        }
        if version == Some(1) {
            let lsn = u64::from_le_bytes(body[..8].try_into().unwrap());
            let Ok(sql) = std::str::from_utf8(&body[8..]) else {
                return WalScan { records, committed_len: pos, torn: true };
            };
            records.push(WalRecord { lsn, sql: sql.to_owned() });
        } else {
            // The CRC passed, so a malformed batch body means a buggy
            // writer, not a torn write — but the safe answer is the same:
            // stop before it, all of the batch or none of it.
            let Some(batch) = parse_batch_body(body) else {
                return WalScan { records, committed_len: pos, torn: true };
            };
            records.extend(batch);
        }
        pos += 8 + len;
    }
}

/// The version field of a WAL header, if the magic matches.
fn wal_header_version(bytes: &[u8]) -> Option<u32> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != WAL_MAGIC {
        return None;
    }
    Some(u32::from_le_bytes(bytes[8..12].try_into().unwrap()))
}

/// Decodes one version-2 batch body into per-statement records, or `None`
/// if the structure is malformed.
fn parse_batch_body(body: &[u8]) -> Option<Vec<WalRecord>> {
    if body.len() < 12 {
        return None;
    }
    let first = u64::from_le_bytes(body[..8].try_into().unwrap());
    let count = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    let mut pos = 12usize;
    for i in 0..count {
        let len_end = pos.checked_add(4)?;
        let len = u32::from_le_bytes(body.get(pos..len_end)?.try_into().unwrap()) as usize;
        let sql_end = len_end.checked_add(len)?;
        let sql = std::str::from_utf8(body.get(len_end..sql_end)?).ok()?;
        out.push(WalRecord { lsn: first + i as u64, sql: sql.to_owned() });
        pos = sql_end;
    }
    if pos != body.len() {
        return None;
    }
    Some(out)
}

/// Frames one batch record (`first_lsn` + the statements) onto `out`.
/// The caller is responsible for the [`MAX_RECORD_BYTES`] bound.
fn frame_batch(out: &mut Vec<u8>, first_lsn: u64, sqls: &[impl AsRef<str>]) {
    let body_len = 12 + sqls.iter().map(|s| 4 + s.as_ref().len()).sum::<usize>();
    let mut body = Vec::with_capacity(body_len);
    put_u64(&mut body, first_lsn);
    put_u32(&mut body, sqls.len() as u32);
    for s in sqls {
        let s = s.as_ref().as_bytes();
        put_u32(&mut body, s.len() as u32);
        body.extend_from_slice(s);
    }
    put_u32(out, body.len() as u32);
    put_u32(out, crc32(&body));
    out.extend_from_slice(&body);
}

/// An open write-ahead log: appends commit records, fsyncing each one.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_lsn: u64,
    /// Records appended since the log was last reset (checkpoint pressure).
    appended_since_reset: u64,
    /// `false` disables the per-record fsync (tests and bulk loads only —
    /// the durability guarantee needs it on).
    pub sync_on_commit: bool,
}

impl Wal {
    /// Opens (or creates) the log at `path`, scans the committed prefix,
    /// truncates any torn tail, and positions for appending. `min_next_lsn`
    /// is the floor for the next LSN (pass `snapshot_lsn + 1` so fresh
    /// records never collide with ones already folded into the snapshot).
    ///
    /// Returns the log and the scan of the committed records found.
    pub fn open(path: impl AsRef<Path>, min_next_lsn: u64) -> Result<(Wal, WalScan), PersistError> {
        let path = path.as_ref().to_path_buf();
        // Never truncate here: the existing committed prefix is the data.
        #[allow(clippy::suspicious_open_options)]
        let mut file = OpenOptions::new().read(true).write(true).create(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = scan_wal(&bytes);
        if scan.committed_len == 0 {
            // Empty or headerless file: (re)write a fresh header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(WAL_MAGIC);
            put_u32(&mut header, WAL_VERSION);
            file.write_all(&header)?;
            file.sync_all()?;
        } else if wal_header_version(&bytes) == Some(1) {
            // Version-1 file with committed records: upgrade in place by
            // re-framing each record as a single-statement batch (same
            // LSNs), written to a sibling and atomically renamed over the
            // original. Any torn tail is dropped by the rewrite.
            let mut out = Vec::with_capacity(bytes.len() + 4 * scan.records.len() + 16);
            out.extend_from_slice(WAL_MAGIC);
            put_u32(&mut out, WAL_VERSION);
            for rec in &scan.records {
                frame_batch(&mut out, rec.lsn, std::slice::from_ref(&rec.sql));
            }
            file = replace_wal_file(&path, &out)?;
        } else if scan.torn {
            file.set_len(scan.committed_len as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let max_lsn = scan.records.iter().map(|r| r.lsn).max().unwrap_or(0);
        let wal = Wal {
            file,
            path,
            next_lsn: min_next_lsn.max(max_lsn + 1),
            appended_since_reset: scan.records.len() as u64,
            sync_on_commit: true,
        };
        Ok((wal, scan))
    }

    /// The path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The LSN of the last appended record (0 if none since the snapshot).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Records appended since the last [`Wal::reset`] (or open) — the
    /// checkpoint-pressure gauge.
    pub fn appended_since_reset(&self) -> u64 {
        self.appended_since_reset
    }

    /// Appends one committed statement and (by default) fsyncs. Returns the
    /// record's LSN. The record is durable when this returns `Ok`.
    pub fn append(&mut self, sql: &str) -> Result<u64, PersistError> {
        self.append_batch(std::slice::from_ref(&sql))
    }

    /// Appends a group-committed batch — one write + **one fsync** for the
    /// whole batch, the amortization that lets write throughput scale with
    /// concurrent committers. Statement `i` gets LSN `first + i`; the first
    /// LSN is returned. Every statement is durable when this returns `Ok`.
    ///
    /// Oversized batches are split greedily into multiple records (each
    /// still atomic and within [`MAX_RECORD_BYTES`], still one fsync for
    /// all of them); a single statement too large for one record errors.
    /// An empty batch is a no-op.
    pub fn append_batch<S: AsRef<str>>(&mut self, sqls: &[S]) -> Result<u64, PersistError> {
        let first = self.next_lsn;
        if sqls.is_empty() {
            return Ok(first);
        }
        let append_sample = crate::metrics::TimedSample::start();
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < sqls.len() {
            let mut end = start;
            let mut body_len = 12usize;
            while end < sqls.len() {
                let add = 4 + sqls[end].as_ref().len();
                if body_len + add > MAX_RECORD_BYTES {
                    break;
                }
                body_len += add;
                end += 1;
            }
            if end == start {
                return Err(PersistError::Corrupt(format!(
                    "statement of {} bytes exceeds the {} byte record limit",
                    sqls[start].as_ref().len(),
                    MAX_RECORD_BYTES
                )));
            }
            frame_batch(&mut out, first + start as u64, &sqls[start..end]);
            start = end;
        }
        self.file.write_all(&out)?;
        if self.sync_on_commit {
            let fsync_sample = crate::metrics::TimedSample::start();
            self.file.sync_data()?;
            fsync_sample.stop(crate::metrics::wal_fsync_us_total());
        }
        self.next_lsn += sqls.len() as u64;
        self.appended_since_reset += sqls.len() as u64;
        crate::metrics::wal_appends_total()
            .fetch_add(sqls.len() as u64, std::sync::atomic::Ordering::Relaxed);
        append_sample.stop(crate::metrics::wal_append_us_total());
        Ok(first)
    }

    /// Truncates the log back to an empty header after a checkpoint whose
    /// snapshot folded in everything up to `checkpoint_lsn`. LSNs keep
    /// counting up from where they were — they never restart, which is what
    /// makes stale WAL bytes after a crashed checkpoint harmless.
    pub fn reset(&mut self, checkpoint_lsn: u64) -> Result<(), PersistError> {
        self.file.set_len(HEADER_LEN as u64)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_all()?;
        self.next_lsn = self.next_lsn.max(checkpoint_lsn + 1);
        self.appended_since_reset = 0;
        Ok(())
    }

    /// Truncates the log to only the records with LSN > `checkpoint_lsn`,
    /// for checkpoints that run *concurrently* with committers: unlike
    /// [`Wal::reset`], writes that landed after the checkpoint fixed its
    /// snapshot survive. Survivors are re-framed as single-statement
    /// batches (a group-committed batch may straddle the checkpoint LSN)
    /// and the file is replaced by atomic rename, so a crash at any point
    /// leaves either the old or the new committed prefix.
    pub fn truncate_through(&mut self, checkpoint_lsn: u64) -> Result<(), PersistError> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        let scan = scan_wal(&bytes);
        let keep: Vec<&WalRecord> =
            scan.records.iter().filter(|r| r.lsn > checkpoint_lsn).collect();
        let mut out = Vec::with_capacity(HEADER_LEN);
        out.extend_from_slice(WAL_MAGIC);
        put_u32(&mut out, WAL_VERSION);
        for rec in &keep {
            frame_batch(&mut out, rec.lsn, std::slice::from_ref(&rec.sql));
        }
        self.file = replace_wal_file(&self.path, &out)?;
        self.file.seek(SeekFrom::End(0))?;
        self.next_lsn = self.next_lsn.max(checkpoint_lsn + 1);
        self.appended_since_reset = keep.len() as u64;
        Ok(())
    }
}

/// Atomically replaces the WAL at `path` with `contents` (write sibling,
/// fsync, rename) and returns a fresh read/write handle to it.
fn replace_wal_file(path: &Path, contents: &[u8]) -> Result<File, PersistError> {
    let tmp = path.with_extension("wal.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    let file = OpenOptions::new().read(true).write(true).open(path)?;
    file.sync_all()?;
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A per-test scratch directory, removed on drop so the suite leaves
    /// nothing behind in `$TMPDIR` (CI asserts this).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("astore-wal-{}-{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn file(&self) -> PathBuf {
            self.0.join("test.wal")
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let scratch = Scratch::new("roundtrip");
        let path = scratch.file();
        let (mut wal, scan) = Wal::open(&path, 1).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(wal.append("INSERT INTO t VALUES (1)").unwrap(), 1);
        assert_eq!(wal.append("DELETE FROM t WHERE rowid = 0").unwrap(), 2);
        drop(wal);
        let (wal, scan) = Wal::open(&path, 1).unwrap();
        let records = scan.records;
        assert!(!scan.torn);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], WalRecord { lsn: 1, sql: "INSERT INTO t VALUES (1)".into() });
        assert_eq!(records[1].lsn, 2);
        assert_eq!(wal.next_lsn(), 3, "next LSN continues after the committed tail");
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let scratch = Scratch::new("torn");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        wal.append("INSERT INTO t VALUES (1)").unwrap();
        wal.append("INSERT INTO t VALUES (2)").unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Cut the file anywhere inside the second record.
        let scan = scan_wal(&full);
        assert_eq!(scan.records.len(), 2);
        let first_end = {
            let one_cut = scan_wal(&full[..full.len() - 1]);
            assert!(one_cut.torn);
            one_cut.committed_len
        };
        std::fs::write(&path, &full[..first_end + 3]).unwrap();
        let (wal, scan) = Wal::open(&path, 1).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1, "torn second record dropped");
        assert_eq!(std::fs::metadata(wal.path()).unwrap().len() as usize, first_end);
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let scratch = Scratch::new("crc");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        wal.append("INSERT INTO t VALUES (1)").unwrap();
        wal.append("INSERT INTO t VALUES (2)").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1; // inside record 2's payload
        bytes[last] ^= 0xFF;
        let scan = scan_wal(&bytes);
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn scan_never_panics_on_arbitrary_prefixes_and_flips() {
        let scratch = Scratch::new("fuzz");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        for i in 0..5 {
            wal.append(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            let scan = scan_wal(&bytes[..cut]);
            assert!(scan.committed_len <= cut);
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let _ = scan_wal(&bad); // must not panic
        }
    }

    #[test]
    fn reset_clears_records_but_not_lsns() {
        let scratch = Scratch::new("reset");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        wal.append("INSERT INTO t VALUES (1)").unwrap();
        let ck = wal.last_lsn();
        wal.reset(ck).unwrap();
        assert_eq!(wal.appended_since_reset(), 0);
        let lsn = wal.append("INSERT INTO t VALUES (2)").unwrap();
        assert!(lsn > ck, "LSNs never restart");
        drop(wal);
        let (_, scan) = Wal::open(&path, 1).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].lsn, lsn);
    }

    #[test]
    fn batch_append_scan_roundtrip() {
        let scratch = Scratch::new("batch");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        let sqls: Vec<String> = (0..5).map(|i| format!("INSERT INTO t VALUES ({i})")).collect();
        assert_eq!(wal.append_batch(&sqls).unwrap(), 1, "first LSN of the batch");
        assert_eq!(wal.next_lsn(), 6);
        assert_eq!(wal.appended_since_reset(), 5);
        assert_eq!(wal.append("INSERT INTO t VALUES (99)").unwrap(), 6);
        assert_eq!(wal.append_batch::<&str>(&[]).unwrap(), 7, "empty batch is a no-op");
        assert_eq!(wal.next_lsn(), 7);
        drop(wal);
        let (_, scan) = Wal::open(&path, 1).unwrap();
        assert!(!scan.torn);
        let lsns: Vec<u64> = scan.records.iter().map(|r| r.lsn).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4, 5, 6], "per-statement LSNs from batch frames");
        assert_eq!(scan.records[4].sql, "INSERT INTO t VALUES (4)");
    }

    #[test]
    fn torn_batch_recovers_committed_prefix_never_a_partial_batch() {
        // Kill-at-every-byte over group-committed batches: wherever the
        // file is cut, the scan must yield exactly the records of the
        // complete leading batches — a batch is all-or-nothing.
        let scratch = Scratch::new("tornbatch");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        let batches: [&[&str]; 3] = [
            &["INSERT INTO t VALUES (1)", "UPDATE t SET v = 2 WHERE rowid = 0"],
            &["INSERT INTO t VALUES (3)"],
            &[
                "DELETE FROM t WHERE rowid = 1",
                "INSERT INTO t VALUES (4)",
                "INSERT INTO t VALUES (5)",
            ],
        ];
        for b in batches {
            wal.append_batch(b).unwrap();
        }
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        // Valid record-count prefixes: batch boundaries only.
        let valid: [usize; 4] = [0, 2, 3, 6];
        for cut in 0..=bytes.len() {
            let scan = scan_wal(&bytes[..cut]);
            assert!(
                valid.contains(&scan.records.len()),
                "cut at {cut} surfaced a partial batch ({} records)",
                scan.records.len()
            );
            // The prefix property: records are exactly the first N.
            for (i, r) in scan.records.iter().enumerate() {
                assert_eq!(r.lsn, i as u64 + 1);
            }
        }
        // Bit flips anywhere must never panic and never surface a partial
        // batch either (the CRC covers the whole body).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let scan = scan_wal(&bad);
            assert!(valid.iter().any(|&v| v >= scan.records.len()));
        }
    }

    #[test]
    fn v1_files_upgrade_to_v2_on_open() {
        let scratch = Scratch::new("v1up");
        let path = scratch.file();
        // Hand-build a version-1 file: header + two single-statement
        // records in the old body layout (u64 LSN + SQL).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC);
        put_u32(&mut bytes, 1);
        for (lsn, sql) in [(1u64, "INSERT INTO t VALUES (1)"), (2, "INSERT INTO t VALUES (2)")] {
            let mut body = Vec::new();
            put_u64(&mut body, lsn);
            body.extend_from_slice(sql.as_bytes());
            put_u32(&mut bytes, body.len() as u32);
            put_u32(&mut bytes, crc32(&body));
            bytes.extend_from_slice(&body);
        }
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, scan) = Wal::open(&path, 1).unwrap();
        assert_eq!(scan.records.len(), 2, "v1 records read during upgrade");
        assert_eq!(scan.records[1].lsn, 2);
        assert_eq!(wal.next_lsn(), 3);
        wal.append("INSERT INTO t VALUES (3)").unwrap();
        drop(wal);
        let rewritten = std::fs::read(&path).unwrap();
        assert_eq!(
            u32::from_le_bytes(rewritten[8..12].try_into().unwrap()),
            WAL_VERSION,
            "file is version 2 after the upgrade"
        );
        let (_, scan) = Wal::open(&path, 1).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records.iter().map(|r| r.lsn).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn truncate_through_keeps_later_records() {
        let scratch = Scratch::new("truncthrough");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        // One batch straddles the checkpoint LSN: statements 1-3, then 4-5.
        wal.append_batch(&["a", "b", "c"]).unwrap();
        wal.append_batch(&["d", "e"]).unwrap();
        // Checkpoint folded in LSNs ≤ 4 — the second batch is split.
        wal.truncate_through(4).unwrap();
        assert_eq!(wal.appended_since_reset(), 1);
        assert_eq!(wal.next_lsn(), 6, "next LSN unchanged (5 is still live)");
        let lsn = wal.append("f").unwrap();
        assert_eq!(lsn, 6);
        drop(wal);
        let (_, scan) = Wal::open(&path, 1).unwrap();
        assert_eq!(
            scan.records.iter().map(|r| (r.lsn, r.sql.as_str())).collect::<Vec<_>>(),
            vec![(5, "e"), (6, "f")],
            "only post-checkpoint statements survive, LSNs preserved"
        );
    }

    #[test]
    fn garbage_file_reinitializes() {
        let scratch = Scratch::new("garbage");
        let path = scratch.file();
        std::fs::write(&path, b"not a wal at all").unwrap();
        let (mut wal, scan) = Wal::open(&path, 5).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(wal.next_lsn(), 5);
        wal.append("INSERT INTO t VALUES (1)").unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path, 1).unwrap();
        assert_eq!(scan.records.len(), 1);
    }
}
