//! The write-ahead log.
//!
//! Append-only file of CRC-framed records, one per committed write
//! statement. Each record carries a monotonically increasing log sequence
//! number (LSN); the snapshot header records the last LSN folded into it,
//! so replay after a checkpoint race skips records the snapshot already
//! contains instead of double-applying them.
//!
//! ## Layout (version 1, little-endian)
//!
//! ```text
//! header   "ASTOREWL" + u32 version                 (12 bytes)
//! record*:
//!   len    u32    body length in bytes (= 8 + payload)
//!   crc    u32    CRC-32 of the body
//!   body   u64 LSN + payload (the statement's SQL text, UTF-8)
//! ```
//!
//! A record *commits* by being fully written and fsynced. Reading stops at
//! the first frame that is truncated, oversized, checksum-mismatched or not
//! UTF-8 — everything before it is the committed prefix, everything from it
//! on is a torn tail that [`Wal::open`] truncates away. Recovery therefore
//! always yields a prefix of the acknowledged writes, no matter where in a
//! byte stream the crash landed.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::wire::{put_u32, put_u64};
use crate::PersistError;

/// File magic of the WAL format.
pub const WAL_MAGIC: &[u8; 8] = b"ASTOREWL";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

const HEADER_LEN: usize = 12;

/// Upper bound on one record body; larger length prefixes are treated as
/// corruption (they would otherwise drive a huge allocation).
pub const MAX_RECORD_BYTES: usize = 1 << 24;

/// One committed WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The logged statement text.
    pub sql: String,
}

/// The committed prefix of a WAL byte stream.
#[derive(Debug)]
pub struct WalScan {
    /// Committed records, in commit order.
    pub records: Vec<WalRecord>,
    /// Byte offset one past the last committed record — the length a
    /// torn-tail truncation should cut the file to.
    pub committed_len: usize,
    /// `true` if bytes after `committed_len` were ignored (torn tail or
    /// corrupt record).
    pub torn: bool,
}

/// Decodes a WAL byte stream into its committed prefix. Never panics on any
/// input; a missing/bad header yields an empty scan at offset
/// `committed_len == 0` with `torn` set (so opening truncates to a fresh
/// header).
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    if bytes.len() < HEADER_LEN
        || &bytes[..8] != WAL_MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != WAL_VERSION
    {
        return WalScan { records: Vec::new(), committed_len: 0, torn: !bytes.is_empty() };
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return WalScan { records, committed_len: pos, torn: false };
        }
        if rest.len() < 8 {
            return WalScan { records, committed_len: pos, torn: true };
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if !(8..=MAX_RECORD_BYTES).contains(&len) || rest.len() < 8 + len {
            return WalScan { records, committed_len: pos, torn: true };
        }
        let body = &rest[8..8 + len];
        if crc32(body) != crc {
            return WalScan { records, committed_len: pos, torn: true };
        }
        let lsn = u64::from_le_bytes(body[..8].try_into().unwrap());
        let Ok(sql) = std::str::from_utf8(&body[8..]) else {
            return WalScan { records, committed_len: pos, torn: true };
        };
        records.push(WalRecord { lsn, sql: sql.to_owned() });
        pos += 8 + len;
    }
}

/// An open write-ahead log: appends commit records, fsyncing each one.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_lsn: u64,
    /// Records appended since the log was last reset (checkpoint pressure).
    appended_since_reset: u64,
    /// `false` disables the per-record fsync (tests and bulk loads only —
    /// the durability guarantee needs it on).
    pub sync_on_commit: bool,
}

impl Wal {
    /// Opens (or creates) the log at `path`, scans the committed prefix,
    /// truncates any torn tail, and positions for appending. `min_next_lsn`
    /// is the floor for the next LSN (pass `snapshot_lsn + 1` so fresh
    /// records never collide with ones already folded into the snapshot).
    ///
    /// Returns the log and the scan of the committed records found.
    pub fn open(path: impl AsRef<Path>, min_next_lsn: u64) -> Result<(Wal, WalScan), PersistError> {
        let path = path.as_ref().to_path_buf();
        // Never truncate here: the existing committed prefix is the data.
        #[allow(clippy::suspicious_open_options)]
        let mut file = OpenOptions::new().read(true).write(true).create(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = scan_wal(&bytes);
        if scan.committed_len == 0 {
            // Empty or headerless file: (re)write a fresh header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(WAL_MAGIC);
            put_u32(&mut header, WAL_VERSION);
            file.write_all(&header)?;
            file.sync_all()?;
        } else if scan.torn {
            file.set_len(scan.committed_len as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let max_lsn = scan.records.iter().map(|r| r.lsn).max().unwrap_or(0);
        let wal = Wal {
            file,
            path,
            next_lsn: min_next_lsn.max(max_lsn + 1),
            appended_since_reset: scan.records.len() as u64,
            sync_on_commit: true,
        };
        Ok((wal, scan))
    }

    /// The path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The LSN of the last appended record (0 if none since the snapshot).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Records appended since the last [`Wal::reset`] (or open) — the
    /// checkpoint-pressure gauge.
    pub fn appended_since_reset(&self) -> u64 {
        self.appended_since_reset
    }

    /// Appends one committed statement and (by default) fsyncs. Returns the
    /// record's LSN. The record is durable when this returns `Ok`.
    pub fn append(&mut self, sql: &str) -> Result<u64, PersistError> {
        let append_sample = crate::metrics::TimedSample::start();
        let lsn = self.next_lsn;
        let mut body = Vec::with_capacity(8 + sql.len());
        put_u64(&mut body, lsn);
        body.extend_from_slice(sql.as_bytes());
        if body.len() > MAX_RECORD_BYTES {
            return Err(PersistError::Corrupt(format!(
                "statement of {} bytes exceeds the {} byte record limit",
                sql.len(),
                MAX_RECORD_BYTES
            )));
        }
        let mut frame = Vec::with_capacity(8 + body.len());
        put_u32(&mut frame, body.len() as u32);
        put_u32(&mut frame, crc32(&body));
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        if self.sync_on_commit {
            let fsync_sample = crate::metrics::TimedSample::start();
            self.file.sync_data()?;
            fsync_sample.stop(crate::metrics::wal_fsync_us_total());
        }
        self.next_lsn += 1;
        self.appended_since_reset += 1;
        crate::metrics::wal_appends_total().fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        append_sample.stop(crate::metrics::wal_append_us_total());
        Ok(lsn)
    }

    /// Truncates the log back to an empty header after a checkpoint whose
    /// snapshot folded in everything up to `checkpoint_lsn`. LSNs keep
    /// counting up from where they were — they never restart, which is what
    /// makes stale WAL bytes after a crashed checkpoint harmless.
    pub fn reset(&mut self, checkpoint_lsn: u64) -> Result<(), PersistError> {
        self.file.set_len(HEADER_LEN as u64)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_all()?;
        self.next_lsn = self.next_lsn.max(checkpoint_lsn + 1);
        self.appended_since_reset = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A per-test scratch directory, removed on drop so the suite leaves
    /// nothing behind in `$TMPDIR` (CI asserts this).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("astore-wal-{}-{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn file(&self) -> PathBuf {
            self.0.join("test.wal")
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let scratch = Scratch::new("roundtrip");
        let path = scratch.file();
        let (mut wal, scan) = Wal::open(&path, 1).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(wal.append("INSERT INTO t VALUES (1)").unwrap(), 1);
        assert_eq!(wal.append("DELETE FROM t WHERE rowid = 0").unwrap(), 2);
        drop(wal);
        let (wal, scan) = Wal::open(&path, 1).unwrap();
        let records = scan.records;
        assert!(!scan.torn);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], WalRecord { lsn: 1, sql: "INSERT INTO t VALUES (1)".into() });
        assert_eq!(records[1].lsn, 2);
        assert_eq!(wal.next_lsn(), 3, "next LSN continues after the committed tail");
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let scratch = Scratch::new("torn");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        wal.append("INSERT INTO t VALUES (1)").unwrap();
        wal.append("INSERT INTO t VALUES (2)").unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Cut the file anywhere inside the second record.
        let scan = scan_wal(&full);
        assert_eq!(scan.records.len(), 2);
        let first_end = {
            let one_cut = scan_wal(&full[..full.len() - 1]);
            assert!(one_cut.torn);
            one_cut.committed_len
        };
        std::fs::write(&path, &full[..first_end + 3]).unwrap();
        let (wal, scan) = Wal::open(&path, 1).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1, "torn second record dropped");
        assert_eq!(std::fs::metadata(wal.path()).unwrap().len() as usize, first_end);
    }

    #[test]
    fn corrupt_crc_stops_the_scan() {
        let scratch = Scratch::new("crc");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        wal.append("INSERT INTO t VALUES (1)").unwrap();
        wal.append("INSERT INTO t VALUES (2)").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1; // inside record 2's payload
        bytes[last] ^= 0xFF;
        let scan = scan_wal(&bytes);
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn scan_never_panics_on_arbitrary_prefixes_and_flips() {
        let scratch = Scratch::new("fuzz");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        for i in 0..5 {
            wal.append(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            let scan = scan_wal(&bytes[..cut]);
            assert!(scan.committed_len <= cut);
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let _ = scan_wal(&bad); // must not panic
        }
    }

    #[test]
    fn reset_clears_records_but_not_lsns() {
        let scratch = Scratch::new("reset");
        let path = scratch.file();
        let (mut wal, _) = Wal::open(&path, 1).unwrap();
        wal.append("INSERT INTO t VALUES (1)").unwrap();
        let ck = wal.last_lsn();
        wal.reset(ck).unwrap();
        assert_eq!(wal.appended_since_reset(), 0);
        let lsn = wal.append("INSERT INTO t VALUES (2)").unwrap();
        assert!(lsn > ck, "LSNs never restart");
        drop(wal);
        let (_, scan) = Wal::open(&path, 1).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].lsn, lsn);
    }

    #[test]
    fn garbage_file_reinitializes() {
        let scratch = Scratch::new("garbage");
        let path = scratch.file();
        std::fs::write(&path, b"not a wal at all").unwrap();
        let (mut wal, scan) = Wal::open(&path, 5).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(wal.next_lsn(), 5);
        wal.append("INSERT INTO t VALUES (1)").unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path, 1).unwrap();
        assert_eq!(scan.records.len(), 1);
    }
}
