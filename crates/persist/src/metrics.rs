//! Durability timing counters, registered in the process-wide
//! [`astore_obs::registry`].
//!
//! Event counters (`*_total`) are always on — two relaxed atomics per
//! event. The *timing* accumulators (`*_us`) sample `Instant::now` twice
//! per event, so they are gated on the global [`astore_obs::enabled`]
//! toggle; with tracing off a WAL append pays one relaxed load extra.
//! Counter handles are interned once per process behind `OnceLock`s — the
//! registry lock is never taken on the append path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

macro_rules! cached_counter {
    ($fn_name:ident, $metric:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> &'static AtomicU64 {
            static C: OnceLock<&'static AtomicU64> = OnceLock::new();
            C.get_or_init(|| astore_obs::counter($metric))
        }
    };
}

cached_counter!(
    wal_appends_total,
    "astore_wal_appends_total",
    "WAL records appended (committed writes)."
);
cached_counter!(
    wal_append_us_total,
    "astore_wal_append_us_total",
    "Cumulative WAL append time, µs — frame build + write + fsync."
);
cached_counter!(
    wal_fsync_us_total,
    "astore_wal_fsync_us_total",
    "Cumulative WAL fsync time, µs (the durability wait inside appends)."
);
cached_counter!(
    checkpoints_total,
    "astore_checkpoints_total",
    "Checkpoints taken (snapshot fold + WAL reset)."
);
cached_counter!(
    checkpoint_us_total,
    "astore_checkpoint_us_total",
    "Cumulative checkpoint time, µs."
);
cached_counter!(
    checkpoint_bytes_total,
    "astore_checkpoint_bytes_total",
    "Cumulative snapshot bytes written by checkpoints."
);

/// A timing sample that is armed only while the global tracing toggle is
/// on: `start` costs one relaxed load when disabled, `stop` adds the
/// elapsed µs into `into` when armed.
#[derive(Debug)]
pub struct TimedSample {
    started: Option<Instant>,
}

impl TimedSample {
    /// Starts a sample iff tracing is enabled.
    pub fn start() -> TimedSample {
        TimedSample { started: astore_obs::enabled().then(Instant::now) }
    }

    /// Folds the elapsed time into a cumulative µs counter (no-op when the
    /// sample was never armed).
    pub fn stop(self, into: &'static AtomicU64) {
        if let Some(t0) = self.started {
            into.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_interned_once() {
        assert!(std::ptr::eq(wal_appends_total(), wal_appends_total()));
        assert!(std::ptr::eq(wal_appends_total(), astore_obs::counter("astore_wal_appends_total")));
    }

    #[test]
    fn disarmed_sample_adds_nothing() {
        let was = astore_obs::enabled();
        astore_obs::set_enabled(false);
        let before = checkpoint_us_total().load(Ordering::Relaxed);
        let s = TimedSample::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.stop(checkpoint_us_total());
        assert_eq!(checkpoint_us_total().load(Ordering::Relaxed), before);
        astore_obs::set_enabled(was);
    }
}
