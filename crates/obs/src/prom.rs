//! Prometheus text-format (version 0.0.4) exposition helpers.
//!
//! [`PromWriter`] accumulates `# HELP` / `# TYPE` headers and samples into
//! one scrape body. Label values are escaped per the spec (`\\`, `\"`,
//! `\n`); metric names are the caller's responsibility (use
//! `[a-zA-Z_][a-zA-Z0-9_]*`).

use std::fmt::Write as _;

/// Builds a Prometheus text-format scrape body.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

/// Escapes a label value for the text format.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl PromWriter {
    /// An empty scrape body.
    pub fn new() -> Self {
        PromWriter::default()
    }

    /// Emits the `# HELP` and `# TYPE` headers for a metric family.
    /// `kind` is one of `counter`, `gauge`, `histogram`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line, with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        if value.fract() == 0.0 && value.abs() < 9e15 {
            let _ = writeln!(self.out, " {}", value as i64);
        } else {
            let _ = writeln!(self.out, " {value}");
        }
    }

    /// Emits an integer sample line (no float formatting ambiguity).
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// The finished scrape body.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_samples() {
        let mut w = PromWriter::new();
        w.header("astore_queries_total", "Queries served.", "counter");
        w.sample_u64("astore_queries_total", &[], 42);
        w.sample("astore_hit_rate", &[("cache", "plan")], 0.5);
        let s = w.finish();
        assert!(s.contains("# HELP astore_queries_total Queries served.\n"));
        assert!(s.contains("# TYPE astore_queries_total counter\n"));
        assert!(s.contains("astore_queries_total 42\n"));
        assert!(s.contains("astore_hit_rate{cache=\"plan\"} 0.5\n"));
    }

    #[test]
    fn label_values_escape() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let mut w = PromWriter::new();
        w.sample_u64("m", &[("sql", "select \"x\"\n")], 1);
        let s = w.finish();
        assert!(s.contains("m{sql=\"select \\\"x\\\"\\n\"} 1\n"));
    }

    #[test]
    fn every_line_is_comment_or_sample() {
        let mut w = PromWriter::new();
        w.header("h", "help text", "histogram");
        w.sample_u64("h_bucket", &[("le", "+Inf")], 3);
        w.sample_u64("h_count", &[], 3);
        w.sample("h_sum", &[], 1.5);
        for line in w.finish().lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(m, v)| !m.is_empty() && v.parse::<f64>().is_ok()),
                "bad exposition line: {line}"
            );
        }
    }
}
