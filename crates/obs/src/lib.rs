//! # astore-obs
//!
//! The observability substrate for the A-Store engine: a lightweight span
//! recorder ([`TraceBuf`]), a process-wide atomic counter registry
//! ([`counter`]), a seqlock for coherent multi-counter snapshots
//! ([`SeqLock`]), and Prometheus text-format exposition helpers
//! ([`PromWriter`]).
//!
//! Everything here is `std`-only and allocation-light. Tracing is designed
//! to be *feature-off cheap*: the global [`enabled`] toggle costs one
//! relaxed atomic load, and when no [`TraceBuf`] is attached to a query the
//! executor's instrumentation reduces to a single `Option` branch per
//! phase — no clock reads, no allocation.
//!
//! ```
//! use astore_obs::TraceBuf;
//!
//! let t = TraceBuf::new();
//! let root = t.alloc();
//! let start = t.now_us();
//! // ... do work ...
//! let child = t.add("scan", Some(root), t.now_us(), 0, vec![("rows", 42)]);
//! t.record(root, "query", None, start, t.now_us().saturating_sub(start), vec![]);
//! assert_eq!(t.spans().len(), 2);
//! assert_ne!(root, child);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod prom;
pub mod registry;
pub mod seqlock;
pub mod trace;

pub use prom::PromWriter;
pub use registry::{counter, counters};
pub use seqlock::SeqLock;
pub use trace::{Span, SpanId, TraceBuf, DEFAULT_SPAN_CAP};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the process-wide tracing toggle on or off.
///
/// The toggle does **not** gate counter arithmetic (counters are two
/// relaxed atomics and always on); it gates the expensive parts — clock
/// sampling for the persistence timing counters and whether the serving
/// layer attaches a [`TraceBuf`] to queries at all.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Returns the process-wide tracing toggle (off by default).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_defaults_off_and_flips() {
        // Other tests may flip the global; restore it when done.
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }
}
