//! A sequence lock for coherent snapshots of counter groups.
//!
//! Writers that update several related atomics as one logical event (say,
//! `segments_scanned` *and* `segments_pruned`) bracket the group with
//! [`SeqLock::begin_write`]; readers use [`SeqLock::read`] to retry until
//! they observe a version that was even and unchanged across the whole
//! read — i.e. no writer was mid-group. A reader whose optimistic retries
//! keep colliding falls back to taking the writer side for one pass, so
//! snapshots are coherent unconditionally. The individual counters stay
//! plain relaxed atomics, so writers that don't care about grouping are
//! unaffected.

use std::sync::atomic::{AtomicU64, Ordering};

/// A sequence lock: odd version = a write group is in progress.
#[derive(Debug, Default)]
pub struct SeqLock {
    version: AtomicU64,
}

/// Ends the write group when dropped.
#[derive(Debug)]
pub struct WriteGuard<'a> {
    version: &'a AtomicU64,
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        self.version.fetch_add(1, Ordering::Release);
    }
}

impl SeqLock {
    /// A fresh lock at version 0.
    pub fn new() -> Self {
        SeqLock::default()
    }

    /// Begins a write group, spinning out any concurrent writer (the
    /// critical section is a handful of atomic adds, so contention is
    /// momentary). The group ends when the guard drops.
    pub fn begin_write(&self) -> WriteGuard<'_> {
        loop {
            let v = self.version.load(Ordering::Relaxed);
            if v & 1 == 0
                && self
                    .version
                    .compare_exchange_weak(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return WriteGuard { version: &self.version };
            }
            std::hint::spin_loop();
        }
    }

    /// Runs `f` until it executes entirely between write groups, returning
    /// its result. Bounded: after 64 torn optimistic attempts (e.g. a
    /// writer descheduled mid-group) the reader stops spinning and
    /// briefly takes the writer side itself, so the final read is still
    /// coherent — a snapshot is *never* torn. Do not call from a thread
    /// already holding a [`WriteGuard`]: the fallback would self-deadlock.
    pub fn read<T>(&self, mut f: impl FnMut() -> T) -> T {
        for _ in 0..64 {
            let before = self.version.load(Ordering::Acquire);
            if before & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let out = f();
            // The standard seqlock reader protocol: an acquire *fence*
            // keeps the relaxed data loads inside `f` from sinking below
            // the version re-read (a plain acquire load only orders later
            // accesses, not earlier ones — insufficient on weakly-ordered
            // hardware), so a torn snapshot cannot pass the check.
            std::sync::atomic::fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) == before {
                return out;
            }
        }
        // Optimistic reads kept colliding: serialize with writers instead.
        let _exclusive = self.begin_write();
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn read_between_writes_sees_consistent_pairs() {
        let lock = SeqLock::new();
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..10_000 {
                    let _g = lock.begin_write();
                    a.fetch_add(1, Ordering::Relaxed);
                    b.fetch_add(1, Ordering::Relaxed);
                }
            });
            s.spawn(|| {
                for _ in 0..1_000 {
                    let (x, y) =
                        lock.read(|| (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed)));
                    assert_eq!(x, y, "torn read: a={x} b={y}");
                }
            });
        });
        assert_eq!(a.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn concurrent_writers_serialize() {
        let lock = SeqLock::new();
        let n = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        let _g = lock.begin_write();
                        // Non-atomic-looking read-modify-write is safe only
                        // if write groups are mutually exclusive.
                        let v = n.load(Ordering::Relaxed);
                        n.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(n.load(Ordering::Relaxed), 4_000);
    }
}
