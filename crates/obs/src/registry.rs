//! A process-wide registry of named atomic counters.
//!
//! [`counter`] interns a `&'static AtomicU64` per name; the reference is
//! leaked once and lives for the process, so hot paths can cache it (e.g.
//! behind a `OnceLock`) and pay only the atomic add. [`counters`] snapshots
//! every registered counter in name order for exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

fn registry() -> &'static Mutex<BTreeMap<&'static str, &'static AtomicU64>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, &'static AtomicU64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the process-wide counter registered under `name`, creating it
/// (initialised to 0) on first use. The same name always yields the same
/// counter. Takes a short lock — cache the returned reference on hot paths.
pub fn counter(name: &'static str) -> &'static AtomicU64 {
    let mut map = registry().lock().expect("counter registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

/// A name-ordered snapshot of every registered counter.
pub fn counters() -> Vec<(&'static str, u64)> {
    let map = registry().lock().expect("counter registry poisoned");
    map.iter().map(|(name, c)| (*name, c.load(Ordering::Relaxed))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_counter() {
        let a = counter("obs_test_same_name");
        let b = counter("obs_test_same_name");
        a.fetch_add(2, Ordering::Relaxed);
        b.fetch_add(3, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn snapshot_is_sorted_and_contains_registered_names() {
        counter("obs_test_snap_b").fetch_add(1, Ordering::Relaxed);
        counter("obs_test_snap_a");
        let snap = counters();
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert!(names.contains(&"obs_test_snap_a"));
        let b = snap.iter().find(|(n, _)| *n == "obs_test_snap_b").unwrap();
        assert!(b.1 >= 1);
    }
}
