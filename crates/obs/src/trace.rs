//! Bounded per-query span buffers over a monotonic clock.
//!
//! A [`TraceBuf`] is created per traced query and threaded (as an
//! `Arc`) through the executor. Spans are recorded *post hoc* from the
//! timing the executor already takes: callers [`alloc`](TraceBuf::alloc)
//! an id up front when children must link to a parent that finishes
//! later, then [`record`](TraceBuf::record) the finished interval. The
//! buffer is bounded; spans past the cap are counted, not stored, so a
//! pathological query cannot balloon memory.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default bound on stored spans per trace.
pub const DEFAULT_SPAN_CAP: usize = 4096;

/// Identifies one span within its [`TraceBuf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u32);

/// One finished span: a named interval on the trace's monotonic clock,
/// optionally linked to a parent and carrying integer attributes.
#[derive(Debug, Clone)]
pub struct Span {
    /// This span's id (unique within the trace).
    pub id: SpanId,
    /// The enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Phase name, e.g. `"scan"` or `"morsel"`.
    pub name: &'static str,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds (0 for point events).
    pub dur_us: u64,
    /// Integer attributes, e.g. `("rows", 1024)`.
    pub attrs: Vec<(&'static str, i64)>,
}

impl Span {
    /// End offset from the trace epoch, microseconds (saturating).
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }

    /// Looks up an integer attribute by name.
    pub fn attr(&self, name: &str) -> Option<i64> {
        self.attrs.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
    }
}

/// A bounded, thread-safe span buffer for one traced query.
#[derive(Debug)]
pub struct TraceBuf {
    epoch: Instant,
    next_id: AtomicU32,
    spans: Mutex<Vec<Span>>,
    dropped: AtomicU64,
    cap: usize,
}

impl Default for TraceBuf {
    fn default() -> Self {
        TraceBuf::with_capacity(DEFAULT_SPAN_CAP)
    }
}

impl TraceBuf {
    /// A fresh trace with the default span cap; the epoch is now.
    pub fn new() -> Self {
        TraceBuf::default()
    }

    /// A fresh trace bounded to `cap` stored spans.
    pub fn with_capacity(cap: usize) -> Self {
        TraceBuf {
            epoch: Instant::now(),
            next_id: AtomicU32::new(0),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            cap: cap.max(1),
        }
    }

    /// Microseconds elapsed since the trace epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Converts an [`Instant`] taken *after* this trace was created into a
    /// microsecond offset from the trace epoch (saturating at 0 for
    /// instants that predate it).
    pub fn us_since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Reserves a span id without recording anything — use when children
    /// must reference a parent whose interval is only known later.
    pub fn alloc(&self) -> SpanId {
        SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Records a finished span under a previously [`alloc`](Self::alloc)'d
    /// id.
    pub fn record(
        &self,
        id: SpanId,
        name: &'static str,
        parent: Option<SpanId>,
        start_us: u64,
        dur_us: u64,
        attrs: Vec<(&'static str, i64)>,
    ) {
        self.push(Span { id, parent, name, start_us, dur_us, attrs });
    }

    /// Allocates an id and records a finished span in one call.
    pub fn add(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        start_us: u64,
        dur_us: u64,
        attrs: Vec<(&'static str, i64)>,
    ) -> SpanId {
        let id = self.alloc();
        self.record(id, name, parent, start_us, dur_us, attrs);
        id
    }

    /// Records a zero-duration point event at the current clock.
    pub fn event(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        attrs: Vec<(&'static str, i64)>,
    ) -> SpanId {
        let now = self.now_us();
        self.add(name, parent, now, 0, attrs)
    }

    fn push(&self, span: Span) {
        let mut spans = self.spans.lock().expect("trace buffer poisoned");
        if spans.len() < self.cap {
            spans.push(span);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A copy of every stored span, in record order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().expect("trace buffer poisoned").clone()
    }

    /// Number of stored spans.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("trace buffer poisoned").len()
    }

    /// `true` when no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_link_and_attrs_read_back() {
        let t = TraceBuf::new();
        let root = t.alloc();
        let child = t.add("child", Some(root), 10, 5, vec![("rows", 7)]);
        t.record(root, "root", None, 0, 100, vec![]);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let c = spans.iter().find(|s| s.id == child).unwrap();
        assert_eq!(c.parent, Some(root));
        assert_eq!(c.attr("rows"), Some(7));
        assert_eq!(c.attr("missing"), None);
        assert_eq!(c.end_us(), 15);
    }

    #[test]
    fn cap_bounds_storage_and_counts_drops() {
        let t = TraceBuf::with_capacity(2);
        for _ in 0..5 {
            t.event("e", None, vec![]);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn clock_is_monotonic_and_instants_convert() {
        let t = TraceBuf::new();
        let a = t.now_us();
        let at = Instant::now();
        let b = t.us_since_epoch(at);
        assert!(b >= a);
        // An instant before the epoch saturates to 0 rather than panicking.
        let early = Instant::now();
        let late = TraceBuf::new();
        assert_eq!(late.us_since_epoch(early), 0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = std::sync::Arc::new(TraceBuf::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        t.event("w", None, vec![("i", i)]);
                    }
                });
            }
        });
        assert_eq!(t.len(), 400);
        // Ids are unique.
        let mut ids: Vec<u32> = t.spans().iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }
}
